"""Synthetic item raw features.

The paper derives item raw features from GloVe-averaged descriptions (the
four e-commerce datasets) or GPS coordinates (Foursquare).  Offline we
cannot fetch either, so we generate features with the property the model
actually exploits: *items from the same latent cluster have similar raw
features*.  Text-like features are cluster centroids in ``d`` dimensions
plus Gaussian noise; GPS-like features are 2-d cluster centers ("venue
neighbourhoods") plus small positional jitter.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def text_like_features(cluster_of_item: np.ndarray, feature_dim: int,
                       rng: np.random.Generator,
                       centroid_scale: float = 1.0,
                       noise_scale: float = 0.25) -> np.ndarray:
    """GloVe-like feature matrix of shape ``(num_items + 1, feature_dim)``.

    ``cluster_of_item[i]`` gives item ``i``'s primary cluster (entry 0 is the
    padding item and receives a zero vector).
    """
    cluster_of_item = np.asarray(cluster_of_item, dtype=np.int64)
    num_clusters = int(cluster_of_item[1:].max()) + 1 if len(cluster_of_item) > 1 else 1
    centroids = rng.normal(0.0, centroid_scale, size=(num_clusters, feature_dim))
    features = centroids[cluster_of_item] + rng.normal(
        0.0, noise_scale, size=(len(cluster_of_item), feature_dim))
    features[0] = 0.0
    return features


def gps_like_features(cluster_of_item: np.ndarray, rng: np.random.Generator,
                      city_extent: float = 10.0,
                      neighbourhood_scale: float = 0.4) -> np.ndarray:
    """2-d check-in coordinates: venues cluster into neighbourhoods."""
    cluster_of_item = np.asarray(cluster_of_item, dtype=np.int64)
    num_clusters = int(cluster_of_item[1:].max()) + 1 if len(cluster_of_item) > 1 else 1
    centers = rng.uniform(-city_extent, city_extent, size=(num_clusters, 2))
    features = centers[cluster_of_item] + rng.normal(
        0.0, neighbourhood_scale, size=(len(cluster_of_item), 2))
    features[0] = 0.0
    return features


def feature_similarity(features: np.ndarray) -> np.ndarray:
    """Cosine-similarity matrix between item feature vectors."""
    norms = np.linalg.norm(features, axis=1, keepdims=True)
    safe = np.where(norms > 0, norms, 1.0)
    unit = features / safe
    return unit @ unit.T


def cluster_feature_coherence(features: np.ndarray,
                              cluster_of_item: np.ndarray) -> Tuple[float, float]:
    """(mean within-cluster, mean between-cluster) cosine similarity.

    Used by tests to assert the generated features actually carry cluster
    signal — the property the paper's encoder stage depends on.
    """
    cluster_of_item = np.asarray(cluster_of_item, dtype=np.int64)
    sims = feature_similarity(features[1:])
    clusters = cluster_of_item[1:]
    same = clusters[:, None] == clusters[None, :]
    off_diag = ~np.eye(len(clusters), dtype=bool)
    within = sims[same & off_diag]
    between = sims[~same]
    within_mean = float(within.mean()) if within.size else 0.0
    between_mean = float(between.mean()) if between.size else 0.0
    return within_mean, between_mean
