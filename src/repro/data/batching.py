"""Padding, negative sampling and mini-batch iteration.

Sequences are ragged (variable length, variable basket size); models consume
dense arrays.  :func:`pad_samples` converts a list of
:class:`~repro.data.interactions.EvalSample` into a :class:`PaddedBatch`:

* ``items``     — ``(batch, time, slot)`` int64, item ids left-aligned in
  time, 0-padded,
* ``basket_mask`` — ``(batch, time, slot)`` float, 1 where a real item sits,
* ``step_mask`` — ``(batch, time)`` bool, True on real timesteps,
* ``users``     — ``(batch,)`` int64,
* ``positives`` — ``(batch, pos_slot)`` target item ids (0-padded) with
  ``positive_mask``.

Training additionally samples ``num_negatives`` negatives per positive slot
uniformly from items outside the row's history and target basket (the
paper's sigmoid + negative-sampling objective).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

import numpy as np

from .interactions import EvalSample


def _exclusive_cumsum(counts: np.ndarray) -> np.ndarray:
    """``[0, c0, c0+c1, ...]`` — offsets from segment lengths."""
    out = np.empty(len(counts) + 1, dtype=np.int64)
    out[0] = 0
    np.cumsum(counts, out=out[1:])
    return out


def _segmented_arange(counts: np.ndarray) -> np.ndarray:
    """``[0..c0), [0..c1), ...`` concatenated, without a Python loop."""
    counts = counts.astype(np.int64, copy=False)
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    starts = np.repeat(_exclusive_cumsum(counts)[:-1], counts)
    return np.arange(total, dtype=np.int64) - starts


@dataclass
class PaddedBatch:
    """Dense representation of a batch of (history, target) samples."""

    users: np.ndarray          # (B,)
    items: np.ndarray          # (B, T, S)
    basket_mask: np.ndarray    # (B, T, S)
    step_mask: np.ndarray      # (B, T)
    positives: np.ndarray      # (B, P)
    positive_mask: np.ndarray  # (B, P)
    negatives: Optional[np.ndarray] = None  # (B, P, N)

    @property
    def batch_size(self) -> int:
        return self.items.shape[0]

    @property
    def max_time(self) -> int:
        return self.items.shape[1]

    def history_multihot(self, num_items: int) -> np.ndarray:
        """Per-step multi-hot tensors, shape ``(B, T, num_items + 1)``.

        Used by models that consume multi-hot inputs directly; column 0
        (padding) is always zero.
        """
        batch, time, slots = self.items.shape
        out = np.zeros((batch, time, num_items + 1), dtype=np.float64)
        b_idx, t_idx, s_idx = np.nonzero(self.basket_mask)
        out[b_idx, t_idx, self.items[b_idx, t_idx, s_idx]] = 1.0
        out[:, :, 0] = 0.0
        return out

    def flat_history_sets(self) -> List[set]:
        """Set of all items in each row's history (for sampling exclusions)."""
        result = []
        for row in range(self.batch_size):
            present = self.items[row][self.basket_mask[row].astype(bool)]
            result.append(set(int(i) for i in present))
        return result


def pad_samples(samples: Sequence[EvalSample],
                max_history: Optional[int] = None) -> PaddedBatch:
    """Convert ragged samples into a :class:`PaddedBatch` (no negatives).

    The dense arrays are each allocated once and filled by a single
    fancy-indexed scatter over (row, step, slot) coordinates — no
    per-sample row assignment.
    """
    if not samples:
        raise ValueError("cannot pad an empty batch")
    histories = []
    for sample in samples:
        history = sample.history
        if max_history is not None and len(history) > max_history:
            history = history[-max_history:]
        histories.append(history)

    batch = len(samples)
    lengths = np.fromiter((len(h) for h in histories), dtype=np.int64,
                          count=batch)
    widths = np.fromiter((len(b) for h in histories for b in h),
                         dtype=np.int64, count=int(lengths.sum()))
    values = np.fromiter((i for h in histories for b in h for i in b),
                         dtype=np.int64, count=int(widths.sum()))
    pos_widths = np.fromiter((len(s.target) for s in samples),
                             dtype=np.int64, count=batch)
    pos_values = np.fromiter((i for s in samples for i in s.target),
                             dtype=np.int64, count=int(pos_widths.sum()))

    max_time = int(lengths.max())
    max_slot = int(widths.max()) if widths.size else 1
    max_pos = int(pos_widths.max())
    users = np.fromiter((s.user_id for s in samples), dtype=np.int64,
                        count=batch)
    step_mask = np.arange(max_time)[None, :] < lengths[:, None]

    items = np.zeros((batch, max_time, max_slot), dtype=np.int64)
    basket_mask = np.zeros((batch, max_time, max_slot), dtype=np.float64)
    rows_e = np.repeat(np.repeat(np.arange(batch), lengths), widths)
    t_e = np.repeat(_segmented_arange(lengths), widths)
    slot = _segmented_arange(widths)
    items[rows_e, t_e, slot] = values
    basket_mask[rows_e, t_e, slot] = 1.0

    positives = np.zeros((batch, max_pos), dtype=np.int64)
    positive_mask = np.zeros((batch, max_pos), dtype=np.float64)
    rows_p = np.repeat(np.arange(batch), pos_widths)
    pslot = _segmented_arange(pos_widths)
    positives[rows_p, pslot] = pos_values
    positive_mask[rows_p, pslot] = 1.0

    return PaddedBatch(users=users, items=items, basket_mask=basket_mask,
                       step_mask=step_mask, positives=positives,
                       positive_mask=positive_mask)


def _exclusion_keys(batch: PaddedBatch, num_items: int) -> np.ndarray:
    """Sorted ``row * (num_items + 1) + item`` keys of every excluded item.

    Excluded = the row's flattened history plus its target basket.  The
    composite-key encoding makes per-row membership tests a single
    ``searchsorted`` over one sorted array — no ``(B, V)`` boolean mask
    (infeasible at large vocabularies) and no per-row Python sets.
    """
    stride = num_items + 1
    hist_rows, hist_t, hist_s = np.nonzero(batch.basket_mask)
    hist_keys = hist_rows * stride + batch.items[hist_rows, hist_t, hist_s]
    pos_rows, pos_slots = np.nonzero(batch.positive_mask)
    pos_keys = pos_rows * stride + batch.positives[pos_rows, pos_slots]
    return np.unique(np.concatenate([hist_keys, pos_keys]))


def sample_negatives(batch: PaddedBatch, num_items: int, num_negatives: int,
                     rng: np.random.Generator) -> np.ndarray:
    """Uniform negatives per positive slot, avoiding history and targets.

    A "negative" the user actually interacted with is not negative
    evidence, so draws are rejected against the union of the row's
    flattened history (``flat_history_sets`` semantics, vectorized) and
    its target basket.  All randomness comes from the passed ``rng``.

    Returns an ``(B, P, N)`` int64 array and also stores it on the batch.
    """
    if num_items < 2:
        raise ValueError("need at least two items to sample negatives")
    b, p = batch.positives.shape
    stride = num_items + 1
    excluded = _exclusion_keys(batch, num_items)
    row_key = (np.arange(b, dtype=np.int64) * stride)[:, None, None]
    negatives = rng.integers(1, num_items + 1, size=(b, p, num_negatives))

    def _collisions(neg: np.ndarray) -> np.ndarray:
        if excluded.size == 0:
            return np.zeros(neg.shape, dtype=bool)
        keys = row_key + neg
        pos = np.searchsorted(excluded, keys)
        pos = np.minimum(pos, excluded.size - 1)
        return excluded[pos] == keys

    # Vectorized rejection: a handful of redraw passes suffices whenever
    # the exclusion set is sparse relative to the catalog.
    for _ in range(8):
        collisions = _collisions(negatives)
        if not collisions.any():
            break
        redraw = rng.integers(1, num_items + 1, size=int(collisions.sum()))
        negatives[collisions] = redraw
    else:
        # Dense rows (exclusions covering most of a tiny catalog) can
        # survive every pass; resolve them exactly from the row's
        # explicit complement.
        collisions = _collisions(negatives)
        if collisions.any():
            catalog = np.arange(1, num_items + 1)
            for row in np.unique(np.nonzero(collisions)[0]):
                lo = np.searchsorted(excluded, row * stride)
                hi = np.searchsorted(excluded, (row + 1) * stride)
                row_excluded = excluded[lo:hi] - row * stride
                allowed = np.setdiff1d(catalog, row_excluded,
                                       assume_unique=True)
                if allowed.size == 0:
                    raise ValueError(
                        f"row {row}: every catalog item (num_items="
                        f"{num_items}) is in the row's history or targets; "
                        f"no negative exists")
                row_mask = collisions[row]
                negatives[row][row_mask] = rng.choice(
                    allowed, size=int(row_mask.sum()), replace=True)
    batch.negatives = negatives
    return negatives


def iterate_batches(samples: Sequence[EvalSample], batch_size: int,
                    rng: Optional[np.random.Generator] = None,
                    shuffle: bool = True,
                    max_history: Optional[int] = None) -> Iterator[PaddedBatch]:
    """Yield :class:`PaddedBatch` chunks, optionally shuffled each epoch.

    Shuffling requires an explicit ``rng``: an unseeded fallback generator
    would silently break run-to-run reproducibility (the repo-wide
    contract is that every RNG is an explicitly seeded
    ``np.random.Generator``).
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    order = np.arange(len(samples))
    if shuffle:
        if rng is None:
            raise ValueError(
                "iterate_batches(shuffle=True) needs an explicit rng so "
                "epoch order is reproducible; pass "
                "np.random.default_rng(seed) or use shuffle=False")
        rng.shuffle(order)
    # Out-of-core sample views assemble the padded batch directly from
    # their memmaps (bit-identical to pad_samples over the same chunk).
    gather = getattr(samples, "gather_batch", None)
    for start in range(0, len(samples), batch_size):
        indices = order[start:start + batch_size]
        if not indices.size:
            continue
        if gather is not None:
            yield gather(indices, max_history=max_history)
        else:
            yield pad_samples([samples[i] for i in indices],
                              max_history=max_history)
