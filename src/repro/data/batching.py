"""Padding, negative sampling and mini-batch iteration.

Sequences are ragged (variable length, variable basket size); models consume
dense arrays.  :func:`pad_samples` converts a list of
:class:`~repro.data.interactions.EvalSample` into a :class:`PaddedBatch`:

* ``items``     — ``(batch, time, slot)`` int64, item ids left-aligned in
  time, 0-padded,
* ``basket_mask`` — ``(batch, time, slot)`` float, 1 where a real item sits,
* ``step_mask`` — ``(batch, time)`` bool, True on real timesteps,
* ``users``     — ``(batch,)`` int64,
* ``positives`` — ``(batch, pos_slot)`` target item ids (0-padded) with
  ``positive_mask``.

Training additionally samples ``num_negatives`` negatives per positive slot
uniformly from items outside the target basket (the paper's sigmoid +
negative-sampling objective).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

import numpy as np

from .interactions import EvalSample


@dataclass
class PaddedBatch:
    """Dense representation of a batch of (history, target) samples."""

    users: np.ndarray          # (B,)
    items: np.ndarray          # (B, T, S)
    basket_mask: np.ndarray    # (B, T, S)
    step_mask: np.ndarray      # (B, T)
    positives: np.ndarray      # (B, P)
    positive_mask: np.ndarray  # (B, P)
    negatives: Optional[np.ndarray] = None  # (B, P, N)

    @property
    def batch_size(self) -> int:
        return self.items.shape[0]

    @property
    def max_time(self) -> int:
        return self.items.shape[1]

    def history_multihot(self, num_items: int) -> np.ndarray:
        """Per-step multi-hot tensors, shape ``(B, T, num_items + 1)``.

        Used by models that consume multi-hot inputs directly; column 0
        (padding) is always zero.
        """
        batch, time, slots = self.items.shape
        out = np.zeros((batch, time, num_items + 1), dtype=np.float64)
        b_idx, t_idx, s_idx = np.nonzero(self.basket_mask)
        out[b_idx, t_idx, self.items[b_idx, t_idx, s_idx]] = 1.0
        out[:, :, 0] = 0.0
        return out

    def flat_history_sets(self) -> List[set]:
        """Set of all items in each row's history (for sampling exclusions)."""
        result = []
        for row in range(self.batch_size):
            present = self.items[row][self.basket_mask[row].astype(bool)]
            result.append(set(int(i) for i in present))
        return result


def pad_samples(samples: Sequence[EvalSample],
                max_history: Optional[int] = None) -> PaddedBatch:
    """Convert ragged samples into a :class:`PaddedBatch` (no negatives)."""
    if not samples:
        raise ValueError("cannot pad an empty batch")
    histories = []
    for sample in samples:
        history = sample.history
        if max_history is not None and len(history) > max_history:
            history = history[-max_history:]
        histories.append(history)

    batch = len(samples)
    max_time = max(len(h) for h in histories)
    max_slot = max((len(basket) for h in histories for basket in h), default=1)
    max_pos = max(len(s.target) for s in samples)

    items = np.zeros((batch, max_time, max_slot), dtype=np.int64)
    basket_mask = np.zeros((batch, max_time, max_slot), dtype=np.float64)
    step_mask = np.zeros((batch, max_time), dtype=bool)
    positives = np.zeros((batch, max_pos), dtype=np.int64)
    positive_mask = np.zeros((batch, max_pos), dtype=np.float64)
    users = np.array([s.user_id for s in samples], dtype=np.int64)

    for row, (sample, history) in enumerate(zip(samples, histories)):
        step_mask[row, :len(history)] = True
        for t, basket in enumerate(history):
            width = len(basket)
            items[row, t, :width] = basket
            basket_mask[row, t, :width] = 1.0
        num_pos = len(sample.target)
        positives[row, :num_pos] = sample.target
        positive_mask[row, :num_pos] = 1.0

    return PaddedBatch(users=users, items=items, basket_mask=basket_mask,
                       step_mask=step_mask, positives=positives,
                       positive_mask=positive_mask)


def sample_negatives(batch: PaddedBatch, num_items: int, num_negatives: int,
                     rng: np.random.Generator) -> np.ndarray:
    """Uniform negatives per positive slot, avoiding the target basket.

    Returns an ``(B, P, N)`` int64 array and also stores it on the batch.
    """
    if num_items < 2:
        raise ValueError("need at least two items to sample negatives")
    b, p = batch.positives.shape
    negatives = rng.integers(1, num_items + 1, size=(b, p, num_negatives))
    # Re-roll collisions with any positive of the same row (vectorized
    # rejection; a handful of passes suffices for sparse targets).
    for _ in range(8):
        collisions = (negatives[:, :, :, None] ==
                      batch.positives[:, None, None, :]).any(axis=-1)
        if not collisions.any():
            break
        redraw = rng.integers(1, num_items + 1, size=int(collisions.sum()))
        negatives[collisions] = redraw
    else:
        # Dense targets can leave collisions after every rejection pass
        # (e.g. positives covering most of a tiny catalog).  Resolve the
        # leftovers exactly: draw each remaining slot from the row's
        # explicit complement of the target basket.
        collisions = (negatives[:, :, :, None] ==
                      batch.positives[:, None, None, :]).any(axis=-1)
        if collisions.any():
            catalog = np.arange(1, num_items + 1)
            for row in np.unique(np.nonzero(collisions)[0]):
                allowed = np.setdiff1d(catalog, batch.positives[row])
                if allowed.size == 0:
                    raise ValueError(
                        f"row {row}: every catalog item (num_items="
                        f"{num_items}) is a positive; no negative exists")
                row_mask = collisions[row]
                negatives[row][row_mask] = rng.choice(
                    allowed, size=int(row_mask.sum()), replace=True)
    batch.negatives = negatives
    return negatives


def iterate_batches(samples: Sequence[EvalSample], batch_size: int,
                    rng: Optional[np.random.Generator] = None,
                    shuffle: bool = True,
                    max_history: Optional[int] = None) -> Iterator[PaddedBatch]:
    """Yield :class:`PaddedBatch` chunks, optionally shuffled each epoch.

    Shuffling requires an explicit ``rng``: an unseeded fallback generator
    would silently break run-to-run reproducibility (the repo-wide
    contract is that every RNG is an explicitly seeded
    ``np.random.Generator``).
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    order = np.arange(len(samples))
    if shuffle:
        if rng is None:
            raise ValueError(
                "iterate_batches(shuffle=True) needs an explicit rng so "
                "epoch order is reproducible; pass "
                "np.random.default_rng(seed) or use shuffle=False")
        rng.shuffle(order)
    for start in range(0, len(samples), batch_size):
        chunk = [samples[i] for i in order[start:start + batch_size]]
        if chunk:
            yield pad_samples(chunk, max_history=max_history)
