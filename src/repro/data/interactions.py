"""Core sequential-interaction data structures.

The paper's data model (§II-A): a set of users, a set of items, and for each
user a chronological sequence of *interaction sets* (baskets).  Ordinary
sequential recommendation is the special case of singleton baskets; next-
basket recommendation allows multi-item steps.

Item ids are 1-based; id 0 is reserved as the padding index everywhere in
the library.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

PAD_ITEM = 0


@dataclass(frozen=True)
class UserSequence:
    """One user's chronological interaction history.

    ``baskets`` is a tuple of baskets; each basket is a tuple of item ids
    interacted at the same timestamp.
    """

    user_id: int
    baskets: Tuple[Tuple[int, ...], ...]

    def __post_init__(self) -> None:
        for basket in self.baskets:
            if not basket:
                raise ValueError("baskets must be non-empty")
            for item in basket:
                if item == PAD_ITEM:
                    raise ValueError("item id 0 is reserved for padding")

    @property
    def length(self) -> int:
        return len(self.baskets)

    @property
    def num_interactions(self) -> int:
        return sum(len(b) for b in self.baskets)

    def items(self) -> List[int]:
        """All items in order of appearance (flattened)."""
        return [item for basket in self.baskets for item in basket]


@dataclass
class SequenceCorpus:
    """A collection of user sequences over a shared item vocabulary."""

    num_items: int
    sequences: List[UserSequence] = field(default_factory=list)

    def __post_init__(self) -> None:
        for seq in self.sequences:
            for item in seq.items():
                if not 1 <= item <= self.num_items:
                    raise ValueError(
                        f"item id {item} outside vocabulary [1, {self.num_items}]")

    # -- basic statistics -------------------------------------------------
    @property
    def num_users(self) -> int:
        return len(self.sequences)

    @property
    def num_interactions(self) -> int:
        return sum(seq.num_interactions for seq in self.sequences)

    @property
    def average_sequence_length(self) -> float:
        if not self.sequences:
            return 0.0
        return float(np.mean([seq.length for seq in self.sequences]))

    @property
    def sparsity(self) -> float:
        """1 - |interactions| / (|users| * |items|), the Table II definition."""
        if not self.sequences or self.num_items == 0:
            return 1.0
        return 1.0 - self.num_interactions / (self.num_users * self.num_items)

    def sequence_lengths(self) -> np.ndarray:
        return np.fromiter((seq.length for seq in self.sequences),
                           dtype=np.int64, count=len(self.sequences))

    def item_popularity(self) -> np.ndarray:
        """Interaction count per item, index 0 unused (padding).

        One ``bincount`` over the flattened item stream instead of a
        per-item Python increment loop.
        """
        flat = np.fromiter((item for seq in self.sequences
                            for basket in seq.baskets for item in basket),
                           dtype=np.int64)
        return np.bincount(flat, minlength=self.num_items + 1)

    def __iter__(self) -> Iterator[UserSequence]:
        return iter(self.sequences)

    def __len__(self) -> int:
        return len(self.sequences)


@dataclass(frozen=True)
class EvalSample:
    """One evaluation case: a user, their history, and the held-out basket."""

    user_id: int
    history: Tuple[Tuple[int, ...], ...]
    target: Tuple[int, ...]


@dataclass
class Split:
    """Leave-one-out split: train corpus plus validation/test samples."""

    train: SequenceCorpus
    validation: List[EvalSample]
    test: List[EvalSample]


def leave_one_out_split(corpus: SequenceCorpus, min_length: int = 3) -> Split:
    """The paper's protocol: last basket → test, second-last → validation.

    Users with fewer than ``min_length`` baskets stay in training unchanged
    (they cannot donate both held-out steps and still leave a history).
    """
    if min_length < 3:
        raise ValueError("min_length below 3 cannot support a two-way holdout")
    if hasattr(corpus, "streaming_split"):
        # Out-of-core corpora (repro.data.eventlog) split by view: the
        # holdout is a per-user length adjustment, not a data copy.
        return corpus.streaming_split(min_length=min_length)
    train_sequences: List[UserSequence] = []
    validation: List[EvalSample] = []
    test: List[EvalSample] = []
    for seq in corpus.sequences:
        if seq.length < min_length:
            train_sequences.append(seq)
            continue
        test.append(EvalSample(user_id=seq.user_id,
                               history=seq.baskets[:-1],
                               target=seq.baskets[-1]))
        validation.append(EvalSample(user_id=seq.user_id,
                                     history=seq.baskets[:-2],
                                     target=seq.baskets[-2]))
        train_sequences.append(UserSequence(user_id=seq.user_id,
                                            baskets=seq.baskets[:-2]))
    train = SequenceCorpus(num_items=corpus.num_items, sequences=train_sequences)
    return Split(train=train, validation=validation, test=test)


def training_prefixes(corpus: SequenceCorpus, max_history: Optional[int] = None
                      ) -> List[EvalSample]:
    """Expand each training sequence into (history, next-basket) samples.

    This realises the paper's eq. (1) sum over steps ``j``: every step with a
    non-empty history becomes a supervised sample.  ``max_history`` truncates
    long histories to their most recent steps.

    Out-of-core corpora return a lazy view (same ordering, same samples)
    instead of a materialized list; downstream code only needs
    ``len``/``__getitem__``, which both provide.
    """
    if hasattr(corpus, "prefix_samples"):
        return corpus.prefix_samples(max_history=max_history)
    samples: List[EvalSample] = []
    for seq in corpus.sequences:
        for j in range(1, seq.length):
            history = seq.baskets[:j]
            if max_history is not None and len(history) > max_history:
                history = history[-max_history:]
            samples.append(EvalSample(user_id=seq.user_id, history=history,
                                      target=seq.baskets[j]))
    return samples
