"""Causal user-behaviour simulator.

The paper evaluates on five public datasets that cannot be downloaded in
this offline environment.  This module provides the substitute: a generator
that samples user interaction sequences from a *known* cluster-level causal
DAG, so that

* the produced corpora exercise exactly the same code paths (sparse
  multi-hot sequences, baskets, leave-one-out splits), and
* ground-truth causal structure and per-event cause annotations exist,
  enabling both the explanation evaluation (Fig. 7/8) and structure-recovery
  checks that the real datasets could never support.

Generative story for one user:

1. The user draws a preference distribution over clusters (Dirichlet).
2. The first basket is spontaneous: a cluster from the preference, an item
   from that cluster by popularity.
3. Each later step is *causal* with probability ``causal_follow_prob``: pick
   a trigger item from the recent history (geometric recency bias), follow a
   random outgoing edge of its cluster in the causal DAG, and emit an item
   of the child cluster.  Otherwise the step is spontaneous (preference
   draw) or pure noise with probability ``noise_prob`` (uniform popular
   item), mirroring the causally-irrelevant "T-shirt / football" items of
   the paper's Fig. 1.
4. With probability ``basket_extra_prob`` extra items join the basket,
   making the step a multi-hot interaction set.

Every causally-generated item records its trigger, producing the ground
truth that substitutes for the paper's human-labeled explanation dataset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..causal.sem import random_dag
from .features import gps_like_features, text_like_features
from .interactions import SequenceCorpus, UserSequence

CauseMap = Dict[int, Tuple[int, ...]]

#: SeedSequence spawn-key tags for the simulator's independent streams.
#: Per-user streams make generation invariant to worker count and shard
#: size: user ``u`` always draws from ``SeedSequence(seed, spawn_key=
#: (_USER_STREAM_TAG, u))`` no matter which process simulates it.
_USER_STREAM_TAG = 1
_FEATURE_STREAM_TAG = 2


@dataclass
class SimulatorConfig:
    """Knobs of the behaviour simulator; see the module docstring."""

    num_users: int = 300
    num_items: int = 150
    num_clusters: int = 8
    edge_prob: float = 0.3
    mean_sequence_length: float = 6.0
    min_sequence_length: int = 3
    max_sequence_length: int = 50
    causal_follow_prob: float = 0.65
    noise_prob: float = 0.1
    basket_extra_prob: float = 0.15
    max_basket_size: int = 3
    popularity_alpha: float = 0.8
    preference_concentration: float = 0.3
    #: Probability that a spontaneous (non-causal) draw enters at a *root*
    #: cluster of the causal DAG.  Users typically enter a shopping episode
    #: at a cause ("printer", "coffee pot") and cascade to effects ("ink
    #: box", "pot cleaner"); later steps are then causally predictable.
    spontaneous_root_bias: float = 0.7
    #: Item-specific causation: when a causal step fires, with this
    #: probability the effect item is drawn from the trigger item's few
    #: *preferred* children inside the child cluster (a specific printer
    #: causes specific ink cartridges), otherwise from the whole child
    #: cluster by popularity.
    affinity_strength: float = 0.5
    #: How many preferred effect items each (trigger, child-cluster) pair has.
    affinity_fanout: int = 3
    #: Geometric recency bias of trigger choice.  1.0 = uniform over the
    #: history: causal chains *interleave* across the sequence (the paper's
    #: Fig. 1 regime, where recency heuristics mislead and causal filtering
    #: pays off); values < 1 favour recent triggers and produce contiguous
    #: chains that plain recurrent models capture equally well.
    recency_decay: float = 1.0
    feature_dim: int = 16
    feature_kind: str = "text"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_items < self.num_clusters:
            raise ValueError("need at least one item per cluster")
        if not 0.0 <= self.causal_follow_prob <= 1.0:
            raise ValueError("causal_follow_prob must be a probability")
        if self.feature_kind not in ("text", "gps"):
            raise ValueError(f"feature_kind must be 'text' or 'gps', got {self.feature_kind!r}")


@dataclass
class SyntheticDataset:
    """A generated corpus plus all the ground truth behind it."""

    name: str
    config: SimulatorConfig
    corpus: SequenceCorpus
    features: np.ndarray                   # (num_items + 1, feature_dim)
    cluster_of_item: np.ndarray            # (num_items + 1,), entry 0 = -1
    cluster_graph: np.ndarray              # (K, K) 0/1 ground-truth DAG
    cause_log: List[List[CauseMap]] = field(default_factory=list)

    @property
    def num_items(self) -> int:
        return self.corpus.num_items

    @property
    def num_clusters(self) -> int:
        return self.cluster_graph.shape[0]

    def item_causal_matrix(self) -> np.ndarray:
        """Ground-truth item-level causal adjacency implied by eq. (9).

        ``out[a, b] = 1`` iff cluster(a) -> cluster(b); shape
        ``(num_items + 1, num_items + 1)`` with row/col 0 zero.
        """
        v = self.num_items
        out = np.zeros((v + 1, v + 1), dtype=np.int64)
        clusters = self.cluster_of_item
        for a in range(1, v + 1):
            ca = clusters[a]
            child_clusters = np.nonzero(self.cluster_graph[ca])[0]
            if len(child_clusters) == 0:
                continue
            targets = np.isin(clusters[1:], child_clusters)
            out[a, 1:][targets] = 1
        return out

    def true_causes_in_history(self, history_items: Sequence[int],
                               target_item: int) -> List[int]:
        """History items whose cluster causally points at the target's cluster."""
        target_cluster = int(self.cluster_of_item[target_item])
        parent_clusters = set(np.nonzero(self.cluster_graph[:, target_cluster])[0])
        return [item for item in history_items
                if int(self.cluster_of_item[item]) in parent_clusters]


def _assign_items_to_clusters(num_items: int, num_clusters: int,
                              rng: np.random.Generator) -> np.ndarray:
    """Round-robin base assignment plus random remainder; entry 0 is -1."""
    assignment = np.empty(num_items + 1, dtype=np.int64)
    assignment[0] = -1
    base = np.arange(num_items) % num_clusters
    rng.shuffle(base)
    assignment[1:] = base
    return assignment


def _popularity_weights(num_items: int, alpha: float,
                        rng: np.random.Generator) -> np.ndarray:
    """Zipf-like popularity over items (index 0 gets weight 0)."""
    ranks = rng.permutation(num_items) + 1
    weights = 1.0 / np.power(ranks, alpha)
    return np.concatenate([[0.0], weights])


class BehaviorSimulator:
    """Samples :class:`SyntheticDataset` instances from a causal story."""

    def __init__(self, config: SimulatorConfig, name: str = "synthetic") -> None:
        self.config = config
        self.name = name
        self._rng = np.random.default_rng(config.seed)
        cfg = config
        self.cluster_graph = random_dag(cfg.num_clusters, cfg.edge_prob, self._rng)
        # Guarantee at least one edge so causal steps are possible.
        if self.cluster_graph.sum() == 0 and cfg.num_clusters >= 2:
            order = self._rng.permutation(cfg.num_clusters)
            self.cluster_graph[order[0], order[1]] = 1
        self.cluster_of_item = _assign_items_to_clusters(
            cfg.num_items, cfg.num_clusters, self._rng)
        self.popularity = _popularity_weights(cfg.num_items,
                                              cfg.popularity_alpha, self._rng)
        self._items_by_cluster = [
            np.nonzero(self.cluster_of_item[1:] == k)[0] + 1
            for k in range(cfg.num_clusters)
        ]
        # Clusters with no incoming causal edge (the DAG's entry points).
        self._root_clusters = np.nonzero(
            self.cluster_graph.sum(axis=0) == 0)[0]

    # ------------------------------------------------------------------
    def user_rng(self, user_id: int) -> np.random.Generator:
        """The dedicated RNG stream of one user.

        Keyed by ``(seed, _USER_STREAM_TAG, user_id)``, so the stream is
        identical whether the user is simulated serially, in a different
        shard, or on a different worker — the contract behind the
        event-log generator's bit-identical serial/parallel outputs.
        """
        seq = np.random.SeedSequence(self.config.seed,
                                     spawn_key=(_USER_STREAM_TAG, user_id))
        return np.random.default_rng(seq)

    def feature_rng(self) -> np.random.Generator:
        """The dedicated RNG stream for item raw features."""
        seq = np.random.SeedSequence(self.config.seed,
                                     spawn_key=(_FEATURE_STREAM_TAG,))
        return np.random.default_rng(seq)

    def generate_features(self, rng: Optional[np.random.Generator] = None
                          ) -> np.ndarray:
        """Item raw features; pass :meth:`feature_rng` for the keyed stream."""
        cfg = self.config
        if rng is None:
            rng = self._rng
        clusters = self.cluster_of_item * (self.cluster_of_item >= 0)
        if cfg.feature_kind == "text":
            features = text_like_features(clusters, cfg.feature_dim, rng)
        else:
            features = gps_like_features(clusters, rng)
        features[0] = 0.0
        return features

    def generate(self, user_seeds: bool = False) -> SyntheticDataset:
        """Generate the full dataset (corpus + features + annotations).

        ``user_seeds=False`` (default) preserves the historical serial
        stream: one generator drives every user in order.  With
        ``user_seeds=True`` each user draws from :meth:`user_rng` and the
        features from :meth:`feature_rng` — the exact draws the event-log
        generator makes, so the in-memory and out-of-core backends produce
        identical corpora for equivalence testing.
        """
        cfg = self.config
        sequences: List[UserSequence] = []
        cause_log: List[List[CauseMap]] = []
        for user_id in range(cfg.num_users):
            rng = self.user_rng(user_id) if user_seeds else None
            baskets, causes = self._simulate_user(rng)
            sequences.append(UserSequence(user_id=user_id,
                                          baskets=tuple(baskets)))
            cause_log.append(causes)
        corpus = SequenceCorpus(num_items=cfg.num_items, sequences=sequences)
        features = self.generate_features(
            self.feature_rng() if user_seeds else None)
        return SyntheticDataset(name=self.name, config=cfg, corpus=corpus,
                                features=features,
                                cluster_of_item=self.cluster_of_item,
                                cluster_graph=self.cluster_graph,
                                cause_log=cause_log)

    # ------------------------------------------------------------------
    def _simulate_user(self, rng: Optional[np.random.Generator] = None
                       ) -> Tuple[List[Tuple[int, ...]], List[CauseMap]]:
        cfg = self.config
        if rng is None:
            rng = self._rng
        preference = rng.dirichlet(
            np.full(cfg.num_clusters, cfg.preference_concentration))
        length = int(np.clip(rng.geometric(1.0 / cfg.mean_sequence_length),
                             cfg.min_sequence_length, cfg.max_sequence_length))
        history: List[int] = []
        baskets: List[Tuple[int, ...]] = []
        causes: List[CauseMap] = []
        for _ in range(length):
            basket: List[int] = []
            basket_causes: CauseMap = {}
            for slot in range(cfg.max_basket_size):
                if slot > 0 and rng.random() >= cfg.basket_extra_prob:
                    break
                item, cause = self._sample_item(history, preference, rng)
                if item not in basket:
                    basket.append(item)
                    basket_causes[item] = cause
            baskets.append(tuple(basket))
            causes.append(basket_causes)
            history.extend(basket)
        return baskets, causes

    def _sample_item(self, history: List[int], preference: np.ndarray,
                     rng: np.random.Generator) -> Tuple[int, Tuple[int, ...]]:
        """Sample one item; return ``(item, cause_items)``."""
        cfg = self.config
        if history and rng.random() < cfg.causal_follow_prob:
            # Retry a few triggers: a user acting causally follows *some*
            # past item that has consequences, not necessarily the first
            # one that comes to mind.
            for _ in range(3):
                trigger = self._pick_trigger(history, rng)
                trigger_cluster = int(self.cluster_of_item[trigger])
                child_clusters = np.nonzero(self.cluster_graph[trigger_cluster])[0]
                if len(child_clusters) > 0:
                    child = int(rng.choice(child_clusters))
                    item = self._pick_effect_item(trigger, child, rng)
                    return item, (trigger,)
        if rng.random() < cfg.noise_prob:
            # Pure popularity noise, causally irrelevant.
            probs = self.popularity[1:] / self.popularity[1:].sum()
            return int(rng.choice(cfg.num_items, p=probs)) + 1, ()
        if self._root_clusters.size and rng.random() < cfg.spontaneous_root_bias:
            root_pref = preference[self._root_clusters]
            root_pref = root_pref / root_pref.sum() if root_pref.sum() > 0 else None
            cluster = int(rng.choice(self._root_clusters, p=root_pref))
        else:
            cluster = int(rng.choice(cfg.num_clusters, p=preference))
        return self._pick_item_from_cluster(cluster, rng), ()

    def _pick_trigger(self, history: List[int],
                      rng: np.random.Generator) -> int:
        """Recency-biased trigger choice (geometric decay toward the past)."""
        weights = np.power(self.config.recency_decay,
                           np.arange(len(history))[::-1])
        probs = weights / weights.sum()
        return int(rng.choice(history, p=probs))

    def preferred_effects(self, trigger: int, child_cluster: int) -> np.ndarray:
        """The trigger item's preferred effect items in ``child_cluster``.

        Deterministic (hash-like) so it needs no O(|V|²) affinity storage:
        the same trigger always prefers the same few children, which is the
        item-specific regularity sequential models can learn.
        """
        members = self._items_by_cluster[child_cluster]
        if len(members) == 0:
            return members
        fanout = min(self.config.affinity_fanout, len(members))
        start = (trigger * 2654435761) % len(members)  # Knuth multiplicative hash
        idx = (start + np.arange(fanout)) % len(members)
        return members[idx]

    def _pick_effect_item(self, trigger: int, child_cluster: int,
                          rng: np.random.Generator) -> int:
        """Sample the effect of a causal step (affinity-aware)."""
        preferred = self.preferred_effects(trigger, child_cluster)
        if len(preferred) and rng.random() < self.config.affinity_strength:
            return int(rng.choice(preferred))
        return self._pick_item_from_cluster(child_cluster, rng)

    def _pick_item_from_cluster(self, cluster: int,
                                rng: np.random.Generator) -> int:
        members = self._items_by_cluster[cluster]
        if len(members) == 0:
            # Degenerate config: fall back to the global popularity draw.
            probs = self.popularity[1:] / self.popularity[1:].sum()
            return int(rng.choice(self.config.num_items, p=probs)) + 1
        weights = self.popularity[members]
        probs = weights / weights.sum()
        return int(rng.choice(members, p=probs))


def generate_dataset(config: SimulatorConfig,
                     name: str = "synthetic") -> SyntheticDataset:
    """Convenience wrapper: build a simulator and generate once."""
    return BehaviorSimulator(config, name=name).generate()
