"""`repro.data` — sequential-recommendation data substrate.

Interaction corpora (§II-A data model), the causal user-behaviour simulator
that substitutes for the paper's five public datasets, item raw features,
padding/negative-sampling/batching, the derived explanation-label dataset
(§V-E) and dataset statistics (Table II / Fig. 3).
"""

from .batching import PaddedBatch, iterate_batches, pad_samples, sample_negatives
from .datasets import (DATASET_NAMES, DEFAULT_SCALE, PAPER_STATISTICS,
                       dataset_config, load_all_datasets, load_dataset)
from .eventlog import (EVENTLOG_FORMAT, EVENTLOG_VERSION, EvalSampleView,
                       EventLogCorpus, EventLogDataset, EventLogStore,
                       EventLogWriter, PrefixSampleView, generate_eventlog,
                       load_eventlog_dataset, open_eventlog)
from .explanation import (ExplanationSample, average_causes_per_sample,
                          build_explanation_dataset, to_eval_samples)
from .features import (cluster_feature_coherence, feature_similarity,
                       gps_like_features, text_like_features)
from .interactions import (PAD_ITEM, EvalSample, SequenceCorpus, Split,
                           UserSequence, leave_one_out_split,
                           training_prefixes)
from .stats import (DatasetStatistics, basket_size_distribution,
                    compare_to_paper, compute_statistics,
                    sequence_length_histogram)
from .temporal import (RegimeShiftDataset, generate_regime_shift_dataset,
                       graph_change_magnitude)
from .synthetic import (BehaviorSimulator, SimulatorConfig, SyntheticDataset,
                        generate_dataset)

__all__ = [
    "PAD_ITEM", "UserSequence", "SequenceCorpus", "EvalSample", "Split",
    "leave_one_out_split", "training_prefixes",
    "SimulatorConfig", "SyntheticDataset", "BehaviorSimulator",
    "generate_dataset",
    "RegimeShiftDataset", "generate_regime_shift_dataset",
    "graph_change_magnitude",
    "DATASET_NAMES", "DEFAULT_SCALE", "PAPER_STATISTICS",
    "dataset_config", "load_dataset", "load_all_datasets",
    "text_like_features", "gps_like_features", "feature_similarity",
    "cluster_feature_coherence",
    "PaddedBatch", "pad_samples", "sample_negatives", "iterate_batches",
    "EVENTLOG_FORMAT", "EVENTLOG_VERSION", "EventLogWriter", "EventLogStore",
    "EventLogCorpus", "EventLogDataset", "EvalSampleView", "PrefixSampleView",
    "generate_eventlog", "load_eventlog_dataset", "open_eventlog",
    "ExplanationSample", "build_explanation_dataset",
    "average_causes_per_sample", "to_eval_samples",
    "DatasetStatistics", "compute_statistics", "sequence_length_histogram",
    "basket_size_distribution", "compare_to_paper",
]
