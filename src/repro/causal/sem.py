"""Random DAG generation and linear structural equation model sampling.

Used by the identifiability experiments (Theorem 1) and as the synthetic
ground truth for the user-behaviour simulator's cluster-level causal graph.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from . import graph as graph_utils


def random_dag(num_nodes: int, edge_prob: float,
               rng: np.random.Generator) -> np.ndarray:
    """Erdős–Rényi DAG: sample edges below a random permutation's diagonal.

    Returns a 0/1 adjacency matrix guaranteed acyclic.
    """
    if not 0.0 <= edge_prob <= 1.0:
        raise ValueError(f"edge_prob must be in [0, 1], got {edge_prob}")
    lower = np.tril(rng.random((num_nodes, num_nodes)) < edge_prob, k=-1)
    perm = rng.permutation(num_nodes)
    adjacency = lower[np.ix_(perm, perm)].astype(np.int64)
    return adjacency.T  # orient edges from earlier to later in the order


def random_dag_scale_free(num_nodes: int, attach_edges: int,
                          rng: np.random.Generator) -> np.ndarray:
    """Scale-free DAG via preferential attachment (Barabási–Albert flavour).

    Node ``t`` attaches ``min(t, attach_edges)`` incoming edges from earlier
    nodes with probability proportional to 1 + out-degree, producing the
    hub-dominated structures common in recommendation taxonomies.
    """
    adjacency = np.zeros((num_nodes, num_nodes), dtype=np.int64)
    out_degree = np.zeros(num_nodes)
    for node in range(1, num_nodes):
        k = min(node, attach_edges)
        weights = 1.0 + out_degree[:node]
        probs = weights / weights.sum()
        sources = rng.choice(node, size=k, replace=False, p=probs)
        for src in sources:
            adjacency[src, node] = 1
            out_degree[src] += 1
    perm = rng.permutation(num_nodes)
    return adjacency[np.ix_(perm, perm)]


def weighted_dag(adjacency: np.ndarray, rng: np.random.Generator,
                 weight_range: Tuple[float, float] = (0.5, 2.0),
                 allow_negative: bool = True) -> np.ndarray:
    """Assign random edge weights, avoiding the unidentifiable near-zero band."""
    low, high = weight_range
    if low <= 0 or high <= low:
        raise ValueError("weight_range must satisfy 0 < low < high")
    magnitudes = rng.uniform(low, high, size=adjacency.shape)
    if allow_negative:
        signs = rng.choice([-1.0, 1.0], size=adjacency.shape)
    else:
        signs = np.ones(adjacency.shape)
    return adjacency * magnitudes * signs


def simulate_linear_sem(weights: np.ndarray, num_samples: int,
                        rng: np.random.Generator,
                        noise_scale: float = 1.0,
                        noise: str = "gaussian") -> np.ndarray:
    """Sample ``X = X W + E`` in topological order.

    Each column j satisfies ``x_j = sum_i W[i, j] x_i + e_j``, matching the
    paper's eq. (3) regression direction (column = effect).
    """
    weights = graph_utils.validate_adjacency(weights)
    order = graph_utils.topological_order(weights)
    m = weights.shape[0]
    samples = np.zeros((num_samples, m))
    for node in order:
        parent_idx = graph_utils.parents(weights, node)
        mean = samples[:, parent_idx] @ weights[parent_idx, node] if parent_idx else 0.0
        if noise == "gaussian":
            eps = rng.normal(0.0, noise_scale, size=num_samples)
        elif noise == "exponential":
            eps = rng.exponential(noise_scale, size=num_samples) - noise_scale
        elif noise == "gumbel":
            eps = rng.gumbel(0.0, noise_scale, size=num_samples)
            eps -= eps.mean()
        else:
            raise ValueError(f"unknown noise kind: {noise!r}")
        samples[:, node] = mean + eps
    return samples


def standardize(samples: np.ndarray) -> np.ndarray:
    """Zero-mean the columns (NOTEARS assumes centered data)."""
    return samples - samples.mean(axis=0, keepdims=True)
