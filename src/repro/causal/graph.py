"""Directed-graph utilities for causal discovery.

A causal graph over ``m`` variables is represented by a weighted adjacency
matrix ``W`` where ``W[i, j] != 0`` means *i causes j* (the paper's
convention).  This module provides structure queries (acyclicity,
topological order), binarization, and conversions used throughout
:mod:`repro.causal` and :mod:`repro.core`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

import networkx as nx
import numpy as np


def validate_adjacency(matrix: np.ndarray) -> np.ndarray:
    """Check that ``matrix`` is a square 2-d array and return it as float64."""
    arr = np.asarray(matrix, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ValueError(f"adjacency matrix must be square, got shape {arr.shape}")
    return arr


def binarize(matrix: np.ndarray, threshold: float = 0.0) -> np.ndarray:
    """Binary adjacency: edges with ``|weight| > threshold``."""
    arr = validate_adjacency(matrix)
    return (np.abs(arr) > threshold).astype(np.int64)


def is_dag(matrix: np.ndarray, threshold: float = 0.0) -> bool:
    """True if the thresholded graph has no directed cycles."""
    graph = to_networkx(matrix, threshold)
    return nx.is_directed_acyclic_graph(graph)


def to_networkx(matrix: np.ndarray, threshold: float = 0.0) -> nx.DiGraph:
    """Convert an adjacency matrix to a :class:`networkx.DiGraph`."""
    binary = binarize(matrix, threshold)
    graph = nx.DiGraph()
    graph.add_nodes_from(range(binary.shape[0]))
    graph.add_edges_from(zip(*np.nonzero(binary)))
    return graph


def from_networkx(graph: nx.DiGraph, num_nodes: Optional[int] = None) -> np.ndarray:
    """Convert a DiGraph back to a 0/1 adjacency matrix."""
    n = num_nodes if num_nodes is not None else graph.number_of_nodes()
    matrix = np.zeros((n, n), dtype=np.int64)
    for u, v in graph.edges():
        matrix[u, v] = 1
    return matrix


def topological_order(matrix: np.ndarray, threshold: float = 0.0) -> List[int]:
    """A topological ordering of the (thresholded) DAG.

    Raises ``ValueError`` if the graph contains a cycle.
    """
    graph = to_networkx(matrix, threshold)
    try:
        return list(nx.topological_sort(graph))
    except nx.NetworkXUnfeasible as exc:
        raise ValueError("graph contains a cycle; no topological order exists") from exc


def parents(matrix: np.ndarray, node: int, threshold: float = 0.0) -> List[int]:
    """Direct causes of ``node``: indices ``i`` with ``|W[i, node]| > threshold``."""
    arr = validate_adjacency(matrix)
    return list(np.nonzero(np.abs(arr[:, node]) > threshold)[0])


def children(matrix: np.ndarray, node: int, threshold: float = 0.0) -> List[int]:
    """Direct effects of ``node``."""
    arr = validate_adjacency(matrix)
    return list(np.nonzero(np.abs(arr[node, :]) > threshold)[0])


def ancestors(matrix: np.ndarray, node: int, threshold: float = 0.0) -> Set[int]:
    """All nodes with a directed path into ``node``."""
    return set(nx.ancestors(to_networkx(matrix, threshold), node))


def descendants(matrix: np.ndarray, node: int, threshold: float = 0.0) -> Set[int]:
    """All nodes reachable from ``node``."""
    return set(nx.descendants(to_networkx(matrix, threshold), node))


def skeleton(matrix: np.ndarray, threshold: float = 0.0) -> np.ndarray:
    """Undirected skeleton: symmetric 0/1 matrix of adjacent pairs."""
    binary = binarize(matrix, threshold)
    return ((binary + binary.T) > 0).astype(np.int64)


def v_structures(matrix: np.ndarray, threshold: float = 0.0
                 ) -> Set[Tuple[int, int, int]]:
    """Colliders ``i -> k <- j`` with ``i`` and ``j`` non-adjacent.

    Returned as tuples ``(min(i, j), k, max(i, j))`` so that each collider is
    counted once regardless of parent order.
    """
    binary = binarize(matrix, threshold)
    skel = skeleton(binary)
    found: Set[Tuple[int, int, int]] = set()
    n = binary.shape[0]
    for k in range(n):
        incoming = np.nonzero(binary[:, k])[0]
        for a_idx in range(len(incoming)):
            for b_idx in range(a_idx + 1, len(incoming)):
                i, j = incoming[a_idx], incoming[b_idx]
                if not skel[i, j]:
                    found.add((int(min(i, j)), int(k), int(max(i, j))))
    return found


def cpdag(matrix: np.ndarray, threshold: float = 0.0) -> np.ndarray:
    """Completed partially directed acyclic graph of the DAG's MEC.

    We return the *pattern* representation (skeleton + oriented v-structure
    edges), which is sufficient for deciding Markov equivalence per the
    paper's Definition 1: two DAGs are Markov equivalent iff they share
    skeleton and v-structures, hence iff their patterns coincide.

    Encoding: ``out[i, j] = 1`` and ``out[j, i] = 0`` for a directed edge
    ``i -> j``; ``out[i, j] = out[j, i] = 1`` for an undirected edge.
    """
    binary = binarize(matrix, threshold)
    skel = skeleton(binary)
    out = skel.copy()
    for i, k, j in v_structures(binary):
        # orient i -> k and j -> k
        out[k, i] = 0
        out[k, j] = 0
    return out


def markov_equivalent(matrix_a: np.ndarray, matrix_b: np.ndarray,
                      threshold: float = 0.0) -> bool:
    """Definition 1 of the paper: same skeleton and same v-structures."""
    skel_equal = np.array_equal(skeleton(matrix_a, threshold),
                                skeleton(matrix_b, threshold))
    if not skel_equal:
        return False
    return v_structures(matrix_a, threshold) == v_structures(matrix_b, threshold)


def edge_list(matrix: np.ndarray, threshold: float = 0.0) -> List[Tuple[int, int]]:
    """All directed edges ``(cause, effect)`` in the thresholded graph."""
    binary = binarize(matrix, threshold)
    return [(int(i), int(j)) for i, j in zip(*np.nonzero(binary))]


def num_edges(matrix: np.ndarray, threshold: float = 0.0) -> int:
    return int(binarize(matrix, threshold).sum())


def prune_to_dag(matrix: np.ndarray) -> np.ndarray:
    """Greedily remove smallest-magnitude edges until the graph is acyclic.

    NOTEARS drives the acyclicity penalty to ~0 but floating point rarely
    reaches exactly zero; this post-processing step (standard practice)
    returns the nearest DAG by deleting the weakest edge on some cycle,
    repeatedly.
    """
    arr = validate_adjacency(matrix).copy()
    while not is_dag(arr):
        graph = to_networkx(arr)
        cycle = nx.find_cycle(graph)
        weakest = min(cycle, key=lambda edge: abs(arr[edge[0], edge[1]]))
        arr[weakest[0], weakest[1]] = 0.0
    return arr
