"""`repro.causal` — causal discovery substrate.

Implements the NOTEARS machinery the paper builds on (§II-B): the
differentiable acyclicity constraint, a standalone linear NOTEARS solver
with augmented-Lagrangian optimization, d-separation, Markov-equivalence
(Definition 1), structure-recovery metrics, and the synthetic SEM machinery
used to verify Theorem 1 empirically.
"""

from .dag_constraint import (clear_expm_cache, expm_cache_info, h_tensor,
                             h_value, h_value_and_grad, polynomial_h_value)
from .dsep import d_connected, d_separated, non_descendant_set
from .graph import (ancestors, binarize, children, cpdag, descendants,
                    edge_list, from_networkx, is_dag, markov_equivalent,
                    num_edges, parents, prune_to_dag, skeleton,
                    to_networkx, topological_order, v_structures,
                    validate_adjacency)
from .identifiability import (IdentifiabilityReport, IdentifiabilityTrial,
                              run_identifiability_study,
                              run_identifiability_trial)
from .metrics import (StructureMetrics, cpdag_agreement, evaluate_structure,
                      skeleton_scores, structural_hamming_distance,
                      v_structure_scores)
from .notears import NotearsResult, notears_linear
from .notears_mlp import NotearsMLPResult, notears_mlp
from .ges import GESResult, ges_search
from .pc import PCResult, fisher_z_test, pc_algorithm
from .sem import (random_dag, random_dag_scale_free, simulate_linear_sem,
                  standardize, weighted_dag)

__all__ = [
    "h_value", "h_value_and_grad", "h_tensor", "polynomial_h_value",
    "clear_expm_cache", "expm_cache_info",
    "d_separated", "d_connected", "non_descendant_set",
    "validate_adjacency", "binarize", "is_dag", "to_networkx",
    "from_networkx", "topological_order", "parents", "children",
    "ancestors", "descendants", "skeleton", "v_structures", "cpdag",
    "markov_equivalent", "edge_list", "num_edges", "prune_to_dag",
    "StructureMetrics", "structural_hamming_distance", "skeleton_scores",
    "v_structure_scores", "evaluate_structure", "cpdag_agreement",
    "NotearsResult", "notears_linear",
    "NotearsMLPResult", "notears_mlp",
    "PCResult", "pc_algorithm", "fisher_z_test",
    "GESResult", "ges_search",
    "random_dag", "random_dag_scale_free", "weighted_dag",
    "simulate_linear_sem", "standardize",
    "IdentifiabilityTrial", "IdentifiabilityReport",
    "run_identifiability_trial", "run_identifiability_study",
]
