"""The PC algorithm — constraint-based causal discovery.

The paper (§IV) contrasts two causal-discovery families: *constraint-based*
methods that test conditional independencies (Spirtes et al.'s PC being the
canonical member) and *score-based* methods like NOTEARS that Causer builds
on.  This module implements PC for Gaussian data so the two families can be
compared on the same synthetic SEMs:

1. start from the complete undirected graph,
2. remove edges whose endpoints are conditionally independent given some
   subset of neighbours (Fisher-z partial-correlation tests of growing
   conditioning size),
3. orient v-structures from the stored separating sets,
4. propagate orientations with Meek's rules R1-R3.

The output is a CPDAG in the same encoding as
:func:`repro.causal.graph.cpdag`, so :func:`markov_equivalent`-style
comparisons and :func:`evaluate_structure` work directly.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

import numpy as np
from scipy import stats


def fisher_z_test(corr: np.ndarray, x: int, y: int, given: Tuple[int, ...],
                  num_samples: int) -> float:
    """p-value of the partial-correlation independence test x ⟂ y | given.

    Uses the Fisher z-transform of the partial correlation computed from
    the inverse of the relevant correlation submatrix.
    """
    idx = [x, y] + list(given)
    sub = corr[np.ix_(idx, idx)]
    try:
        precision = np.linalg.inv(sub)
    except np.linalg.LinAlgError:
        precision = np.linalg.pinv(sub)
    partial = -precision[0, 1] / np.sqrt(precision[0, 0] * precision[1, 1])
    partial = np.clip(partial, -0.999999, 0.999999)
    dof = num_samples - len(given) - 3
    if dof <= 0:
        return 1.0
    z = 0.5 * np.log((1 + partial) / (1 - partial)) * np.sqrt(dof)
    return float(2 * (1 - stats.norm.cdf(abs(z))))


class PCResult:
    """Outcome of a PC run: the CPDAG and the separating sets found."""

    def __init__(self, cpdag: np.ndarray,
                 separating_sets: Dict[FrozenSet[int], Tuple[int, ...]]) -> None:
        self.cpdag = cpdag
        self.separating_sets = separating_sets

    def undirected_edges(self) -> List[Tuple[int, int]]:
        out = []
        n = self.cpdag.shape[0]
        for i in range(n):
            for j in range(i + 1, n):
                if self.cpdag[i, j] and self.cpdag[j, i]:
                    out.append((i, j))
        return out

    def directed_edges(self) -> List[Tuple[int, int]]:
        out = []
        n = self.cpdag.shape[0]
        for i in range(n):
            for j in range(n):
                if self.cpdag[i, j] and not self.cpdag[j, i]:
                    out.append((i, j))
        return out


def pc_algorithm(data: np.ndarray, alpha: float = 0.05,
                 max_condition_size: Optional[int] = None) -> PCResult:
    """Run PC on an ``(n, m)`` data matrix; returns the estimated CPDAG."""
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ValueError(f"data must be 2-d, got shape {data.shape}")
    n, m = data.shape
    corr = np.corrcoef(data, rowvar=False)
    adjacency = np.ones((m, m), dtype=bool)
    np.fill_diagonal(adjacency, False)
    separating: Dict[FrozenSet[int], Tuple[int, ...]] = {}

    # -- Phase 1: skeleton discovery -----------------------------------
    limit = m - 2 if max_condition_size is None else max_condition_size
    size = 0
    while size <= limit:
        any_testable = False
        for x in range(m):
            for y in range(x + 1, m):
                if not adjacency[x, y]:
                    continue
                neighbours = set(np.nonzero(adjacency[x])[0]) - {y}
                if len(neighbours) < size:
                    continue
                any_testable = True
                removed = False
                for given in combinations(sorted(neighbours), size):
                    p_value = fisher_z_test(corr, x, y, given, n)
                    if p_value > alpha:
                        adjacency[x, y] = adjacency[y, x] = False
                        separating[frozenset((x, y))] = given
                        removed = True
                        break
                if removed:
                    continue
        if not any_testable:
            break
        size += 1

    # -- Phase 2: v-structure orientation ------------------------------
    # cpdag[i, j] = 1 means "i - j or i -> j" per the pattern encoding.
    pattern = adjacency.astype(np.int64)
    for z in range(m):
        neighbours = np.nonzero(adjacency[z])[0]
        for x, y in combinations(neighbours, 2):
            if adjacency[x, y]:
                continue  # shielded
            sep = separating.get(frozenset((x, y)), ())
            if z not in sep:
                # x -> z <- y
                pattern[z, x] = 0
                pattern[z, y] = 0

    # -- Phase 3: Meek's orientation rules ------------------------------
    pattern = _apply_meek_rules(pattern)
    return PCResult(cpdag=pattern, separating_sets=separating)


def _apply_meek_rules(pattern: np.ndarray) -> np.ndarray:
    """Meek rules R1-R3, iterated to a fixed point.

    Edge encodings: directed i->j iff pattern[i,j]=1, pattern[j,i]=0;
    undirected iff both 1.
    """
    pattern = pattern.copy()
    m = pattern.shape[0]

    def directed(i, j):
        return pattern[i, j] == 1 and pattern[j, i] == 0

    def undirected(i, j):
        return pattern[i, j] == 1 and pattern[j, i] == 1

    changed = True
    while changed:
        changed = False
        for a in range(m):
            for b in range(m):
                if not undirected(a, b):
                    continue
                # R1: c -> a and c not adjacent to b  =>  a -> b
                for c in range(m):
                    if directed(c, a) and not pattern[c, b] and not pattern[b, c]:
                        pattern[b, a] = 0
                        changed = True
                        break
                if not undirected(a, b):
                    continue
                # R2: a -> c -> b  =>  a -> b
                for c in range(m):
                    if directed(a, c) and directed(c, b):
                        pattern[b, a] = 0
                        changed = True
                        break
                if not undirected(a, b):
                    continue
                # R3: a - c -> b and a - d -> b with c, d non-adjacent => a -> b
                parents_of_b = [c for c in range(m)
                                if directed(c, b) and undirected(a, c)]
                stop = False
                for c_idx in range(len(parents_of_b)):
                    for d_idx in range(c_idx + 1, len(parents_of_b)):
                        c, d = parents_of_b[c_idx], parents_of_b[d_idx]
                        if not pattern[c, d] and not pattern[d, c]:
                            pattern[b, a] = 0
                            changed = True
                            stop = True
                            break
                    if stop:
                        break
    return pattern
