"""Standalone linear NOTEARS solver (Zheng et al., 2018).

Solves the paper's eq. (3):

    min_W  (1/2n) ||X - X W||_F^2 + lambda ||W||_1
    s.t.   h(W) = trace(e^{W∘W}) - m = 0

with the augmented Lagrangian method: a sequence of unconstrained
sub-problems

    min_W  loss(W) + lambda ||W||_1 + beta1 h(W) + (beta2/2) h(W)^2

each solved by L-BFGS-B on the split ``W = W+ - W-`` (which turns the L1
term into a smooth linear one with bound constraints), followed by the
multiplier updates of Algorithm 1 (``beta1 += beta2 h``, ``beta2 *= kappa1``
while progress stalls).

This solver powers the identifiability experiments and doubles as the
pre-training option the paper mentions for ``W`` in §III-C.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np
import scipy.optimize as sopt

from .dag_constraint import h_value_and_grad
from .graph import prune_to_dag


@dataclass
class NotearsResult:
    """Outcome of a NOTEARS run.

    Attributes
    ----------
    weights:
        The continuous weighted adjacency estimate (before thresholding).
    adjacency:
        Thresholded, cycle-pruned 0/1 adjacency.
    h_final:
        Final acyclicity-constraint value.
    iterations:
        Number of augmented-Lagrangian outer iterations used.
    history:
        Per-outer-iteration ``(h, objective)`` trace, for diagnostics.
    """

    weights: np.ndarray
    adjacency: np.ndarray
    h_final: float
    iterations: int
    history: List[Tuple[float, float]] = field(default_factory=list)


def _loss_and_grad(weights: np.ndarray, data: np.ndarray
                   ) -> Tuple[float, np.ndarray]:
    """Least-squares score (1/2n)||X - XW||_F^2 and its gradient."""
    n = data.shape[0]
    residual = data @ weights - data
    loss = 0.5 / n * float((residual ** 2).sum())
    grad = data.T @ residual / n
    return loss, grad


def notears_linear(data: np.ndarray,
                   lambda1: float = 0.1,
                   max_outer_iterations: int = 100,
                   h_tolerance: float = 1e-8,
                   beta2_max: float = 1e16,
                   kappa1: float = 10.0,
                   kappa2: float = 0.25,
                   weight_threshold: float = 0.3) -> NotearsResult:
    """Run linear NOTEARS on an ``(n, m)`` data matrix.

    Parameters mirror the paper's Algorithm 1 notation: ``kappa1 > 1`` grows
    the penalty ``beta2`` whenever ``|h|`` fails to shrink by factor
    ``kappa2 < 1``; ``beta1`` is the Lagrange multiplier.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ValueError(f"data must be 2-d, got shape {data.shape}")
    m = data.shape[1]
    beta1, beta2 = 0.0, 1.0
    weights = np.zeros((m, m))
    h_current = np.inf
    history: List[Tuple[float, float]] = []

    def augmented(flat: np.ndarray) -> Tuple[float, np.ndarray]:
        # flat = [W+ ; W-], both >= 0, W = W+ - W-.
        w_pos = flat[:m * m].reshape(m, m)
        w_neg = flat[m * m:].reshape(m, m)
        w = w_pos - w_neg
        loss, loss_grad = _loss_and_grad(w, data)
        h, h_grad = h_value_and_grad(w)
        objective = (loss + lambda1 * flat.sum()
                     + beta1 * h + 0.5 * beta2 * h * h)
        grad_w = loss_grad + (beta1 + beta2 * h) * h_grad
        grad = np.concatenate([(grad_w + lambda1).ravel(),
                               (-grad_w + lambda1).ravel()])
        return objective, grad

    bounds = [(0.0, 0.0) if i == j else (0.0, None)
              for _ in range(2) for i in range(m) for j in range(m)]

    iterations = 0
    for iterations in range(1, max_outer_iterations + 1):
        flat0 = np.concatenate([np.maximum(weights, 0).ravel(),
                                np.maximum(-weights, 0).ravel()])
        h_new = h_current
        while beta2 < beta2_max:
            solution = sopt.minimize(augmented, flat0, jac=True,
                                     method="L-BFGS-B", bounds=bounds)
            flat = solution.x
            candidate = flat[:m * m].reshape(m, m) - flat[m * m:].reshape(m, m)
            h_new, _ = h_value_and_grad(candidate)
            if h_new > kappa2 * h_current:
                beta2 *= kappa1
            else:
                break
        weights = candidate
        history.append((float(h_new), float(solution.fun)))
        beta1 += beta2 * h_new
        h_current = h_new
        if h_current <= h_tolerance or beta2 >= beta2_max:
            break

    thresholded = weights.copy()
    thresholded[np.abs(thresholded) < weight_threshold] = 0.0
    pruned = prune_to_dag(thresholded)
    adjacency = (pruned != 0).astype(np.int64)
    return NotearsResult(weights=weights, adjacency=adjacency,
                         h_final=float(h_current), iterations=iterations,
                         history=history)
