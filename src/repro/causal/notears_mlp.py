"""Nonlinear NOTEARS (MLP variant), in the spirit of Zheng et al. (2020)
and the graph-autoencoder line the paper cites ([8], Ng et al.).

Each variable ``x_j`` is regressed on all others by its own one-hidden-layer
MLP; the *functional* adjacency strength

    A[i, j] = || first-layer weights of f_j that read x_i ||_2

drives the same acyclicity constraint ``trace(e^{A∘A}) = m`` as the linear
solver, optimized by the augmented-Lagrangian method with Adam on the inner
problems.  All of it runs on :mod:`repro.nn`'s autograd — no scipy L-BFGS —
which doubles as an end-to-end stress test of the engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..nn import Adam, Module, Parameter, Tensor
from .dag_constraint import h_tensor
from .graph import prune_to_dag


class _PerVariableMLPs(Module):
    """m independent regressors, batched as (m, ...) parameter stacks.

    ``W1`` has shape ``(m, hidden, m)``: slice ``W1[j]`` is variable j's
    first layer.  Column ``j`` of ``W1[j]`` is structurally zeroed so a
    variable can never predict itself.
    """

    def __init__(self, num_vars: int, hidden: int,
                 rng: np.random.Generator) -> None:
        super().__init__()
        self.num_vars = num_vars
        self.hidden = hidden
        scale = 1.0 / np.sqrt(num_vars)
        self.w1 = Parameter(rng.uniform(-scale, scale,
                                        size=(num_vars, hidden, num_vars)))
        self.b1 = Parameter(np.zeros((num_vars, 1, hidden)))
        self.w2 = Parameter(rng.uniform(-scale, scale,
                                        size=(num_vars, 1, hidden)))
        self.b2 = Parameter(np.zeros((num_vars, 1)))
        mask = np.ones((num_vars, hidden, num_vars))
        for j in range(num_vars):
            mask[j, :, j] = 0.0
        self._self_mask = mask

    def masked_w1(self) -> Tensor:
        return self.w1 * Tensor(self._self_mask)

    def forward(self, data: np.ndarray) -> Tensor:
        """Predictions for every variable: shape ``(m, n)``."""
        x = Tensor(data)                                   # (n, m) constant
        w1 = self.masked_w1()                              # (m, h, m)
        hidden = (x @ w1.transpose(0, 2, 1) + self.b1).tanh()  # (m, n, h)
        out = (hidden * self.w2).sum(axis=-1) + self.b2    # (m, n)
        return out

    def adjacency_strength(self) -> Tensor:
        """``A[i, j] = ||W1[j, :, i]||_2`` — functional edge strengths."""
        w1 = self.masked_w1()
        squared = (w1 * w1).sum(axis=1)                    # (m(j), m(i))
        return (squared + 1e-12).sqrt().transpose(1, 0)    # (i, j)


@dataclass
class NotearsMLPResult:
    """Outcome of a nonlinear NOTEARS run."""

    strengths: np.ndarray
    adjacency: np.ndarray
    h_final: float
    outer_iterations: int
    history: List[Tuple[float, float]] = field(default_factory=list)


def notears_mlp(data: np.ndarray,
                hidden: int = 10,
                lambda1: float = 0.02,
                max_outer_iterations: int = 12,
                inner_steps: int = 300,
                learning_rate: float = 0.01,
                h_tolerance: float = 1e-6,
                beta2_max: float = 1e5,
                kappa1: float = 3.0,
                kappa2: float = 0.5,
                weight_threshold: float = 0.2,
                seed: int = 0) -> NotearsMLPResult:
    """Run MLP-based NOTEARS on an ``(n, m)`` data matrix.

    The augmented-Lagrangian outer loop mirrors Algorithm 1; each inner
    sub-problem is minimized with Adam for ``inner_steps`` full-batch steps.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ValueError(f"data must be 2-d, got shape {data.shape}")
    n, m = data.shape
    rng = np.random.default_rng(seed)
    model = _PerVariableMLPs(m, hidden, rng)
    optimizer = Adam(model.parameters(), lr=learning_rate)
    targets = Tensor(data.T)                               # (m, n) constant

    beta1, beta2 = 0.0, 1.0
    h_current = np.inf
    history: List[Tuple[float, float]] = []

    def objective() -> Tuple[Tensor, Tensor]:
        predictions = model(data)
        residual = predictions - targets
        # Least-squares score summed over variables (mean over samples):
        # a per-entry mean would shrink the data term by m and let the
        # sparsity/DAG penalties zero the graph out.
        loss = (residual * residual).sum() * (1.0 / n)
        strengths = model.adjacency_strength()
        penalty = lambda1 * strengths.sum()
        h = h_tensor(strengths)
        total = loss + penalty + beta1 * h + (0.5 * beta2) * h * h
        return total, h

    outer = 0
    for outer in range(1, max_outer_iterations + 1):
        h_new = h_current
        while beta2 < beta2_max:
            for _ in range(inner_steps):
                optimizer.zero_grad()
                total, _ = objective()
                total.backward()
                optimizer.clip_grad_norm(10.0)
                optimizer.step()
            with_np = model.adjacency_strength().data
            from .dag_constraint import h_value
            h_new = h_value(with_np)
            if h_new > kappa2 * h_current:
                beta2 *= kappa1
            else:
                break
        history.append((float(h_new), float(total.item())))
        beta1 += beta2 * h_new
        h_current = h_new
        if h_current <= h_tolerance or beta2 >= beta2_max:
            break

    strengths = model.adjacency_strength().data.copy()
    thresholded = strengths.copy()
    thresholded[thresholded < weight_threshold] = 0.0
    pruned = prune_to_dag(thresholded)
    return NotearsMLPResult(strengths=strengths,
                            adjacency=(pruned != 0).astype(np.int64),
                            h_final=float(h_current),
                            outer_iterations=outer,
                            history=history)
