"""The NOTEARS differentiable acyclicity constraint.

Zheng et al. (2018) characterize acyclicity of a weighted graph ``W`` via

    h(W) = trace(exp(W ∘ W)) - m = 0,

where ``∘`` is the elementwise product and ``m`` the number of nodes:
``[S^k]_ii`` counts weighted k-step paths from node i back to itself, so the
trace of the matrix exponential exceeds ``m`` exactly when a directed cycle
carries nonzero weight (paper §II-B).  The gradient has the closed form
``∇h(W) = exp(W ∘ W)^T ∘ 2W``.

Both the numpy functions (for the standalone NOTEARS solver) and an autograd
wrapper (for joint training inside Causer) are provided.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy.linalg import expm

from ..nn.tensor import Tensor


def h_value(weights: np.ndarray) -> float:
    """The constraint value ``trace(e^{W∘W}) - m`` (0 iff acyclic)."""
    weights = np.asarray(weights, dtype=np.float64)
    m = weights.shape[0]
    return float(np.trace(expm(weights * weights)) - m)


def h_value_and_grad(weights: np.ndarray) -> Tuple[float, np.ndarray]:
    """Constraint value and its gradient ``(e^{W∘W})^T ∘ 2W``."""
    weights = np.asarray(weights, dtype=np.float64)
    m = weights.shape[0]
    exp_sq = expm(weights * weights)
    value = float(np.trace(exp_sq) - m)
    grad = exp_sq.T * (2.0 * weights)
    return value, grad


def h_tensor(weights: Tensor) -> Tensor:
    """Autograd node for ``h(W)`` usable inside a Causer training step.

    The forward pass uses scipy's Padé-approximant ``expm``; the backward
    pass uses the analytic gradient above, chained with upstream gradients.
    """
    w_data = weights.data
    m = w_data.shape[0]
    exp_sq = expm(w_data * w_data)
    value = np.array(np.trace(exp_sq) - m)

    def backward(grad: np.ndarray) -> None:
        if weights.requires_grad:
            local = exp_sq.T * (2.0 * w_data)
            weights._accumulate(grad * local)

    return Tensor._make(value, (weights,), backward)


def polynomial_h_value(weights: np.ndarray, order: int = 10) -> float:
    """Truncated-series variant ``sum_k trace(S^k)/k!`` used by some follow-ups.

    Cheaper than ``expm`` for large graphs; exposed for the scalability
    ablation.  Converges to :func:`h_value` as ``order`` grows.
    """
    weights = np.asarray(weights, dtype=np.float64)
    squared = weights * weights
    power = np.eye(weights.shape[0])
    total = 0.0
    factorial = 1.0
    for k in range(1, order + 1):
        power = power @ squared
        factorial *= k
        total += np.trace(power) / factorial
    return float(total)
