"""The NOTEARS differentiable acyclicity constraint.

Zheng et al. (2018) characterize acyclicity of a weighted graph ``W`` via

    h(W) = trace(exp(W ∘ W)) - m = 0,

where ``∘`` is the elementwise product and ``m`` the number of nodes:
``[S^k]_ii`` counts weighted k-step paths from node i back to itself, so the
trace of the matrix exponential exceeds ``m`` exactly when a directed cycle
carries nonzero weight (paper §II-B).  The gradient has the closed form
``∇h(W) = exp(W ∘ W)^T ∘ 2W``.

Both the numpy functions (for the standalone NOTEARS solver) and an autograd
wrapper (for joint training inside Causer) are provided.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Tuple

import numpy as np
from scipy.linalg import expm

from ..nn.tensor import Tensor

# ----------------------------------------------------------------------
# Matrix-exponential cache
# ----------------------------------------------------------------------
# The augmented-Lagrangian outer loop (and Causer's per-batch penalty term)
# repeatedly evaluates h at the *same* W: the dual update needs h(W) right
# after the inner minimization computed it, and epochs that freeze the
# causal parameters re-hit identical weights every batch.  ``expm`` is by
# far the most expensive primitive in that loop, so we memoize it on the
# content hash of W.  Entries are small (m x m) and the map is LRU-bounded.
_EXPM_CACHE_SIZE = 8
_expm_cache: "OrderedDict[bytes, np.ndarray]" = OrderedDict()
_expm_stats = {"hits": 0, "misses": 0}


def _expm_of_square(weights: np.ndarray) -> np.ndarray:
    """``expm(W ∘ W)`` with content-hash memoization.

    The returned array is shared with the cache; callers must treat it as
    read-only (all in-module consumers only reduce or multiply out of it).
    """
    payload = np.ascontiguousarray(weights)
    key = (hashlib.sha256(payload.tobytes()).digest()
           + repr(payload.shape).encode())
    cached = _expm_cache.get(key)
    if cached is not None:
        _expm_cache.move_to_end(key)
        _expm_stats["hits"] += 1
        return cached
    _expm_stats["misses"] += 1
    exp_sq = expm(weights * weights)
    _expm_cache[key] = exp_sq
    while len(_expm_cache) > _EXPM_CACHE_SIZE:
        _expm_cache.popitem(last=False)
    return exp_sq


def expm_cache_info() -> Tuple[int, int, int]:
    """``(hits, misses, size)`` counters for the expm cache."""
    return _expm_stats["hits"], _expm_stats["misses"], len(_expm_cache)


def clear_expm_cache() -> None:
    """Drop all cached exponentials and reset the counters."""
    _expm_cache.clear()
    _expm_stats["hits"] = 0
    _expm_stats["misses"] = 0


def h_value(weights: np.ndarray) -> float:
    """The constraint value ``trace(e^{W∘W}) - m`` (0 iff acyclic)."""
    weights = np.asarray(weights, dtype=np.float64)
    m = weights.shape[0]
    return float(np.trace(_expm_of_square(weights)) - m)


def h_value_and_grad(weights: np.ndarray) -> Tuple[float, np.ndarray]:
    """Constraint value and its gradient ``(e^{W∘W})^T ∘ 2W``."""
    weights = np.asarray(weights, dtype=np.float64)
    m = weights.shape[0]
    exp_sq = _expm_of_square(weights)
    value = float(np.trace(exp_sq) - m)
    grad = exp_sq.T * (2.0 * weights)
    return value, grad


def h_tensor(weights: Tensor) -> Tensor:
    """Autograd node for ``h(W)`` usable inside a Causer training step.

    The forward pass uses scipy's Padé-approximant ``expm``; the backward
    pass uses the analytic gradient above, chained with upstream gradients.
    """
    w_data = weights.data
    m = w_data.shape[0]
    exp_sq = _expm_of_square(w_data)
    value = np.array(np.trace(exp_sq) - m)

    def backward(grad: np.ndarray) -> None:
        if weights.requires_grad:
            local = exp_sq.T * (2.0 * w_data)
            weights._accumulate(grad * local)

    return Tensor._make(value, (weights,), backward)


def polynomial_h_value(weights: np.ndarray, order: int = 10) -> float:
    """Truncated-series variant ``sum_k trace(S^k)/k!`` used by some follow-ups.

    Cheaper than ``expm`` for large graphs; exposed for the scalability
    ablation.  Converges to :func:`h_value` as ``order`` grows.
    """
    weights = np.asarray(weights, dtype=np.float64)
    squared = weights * weights
    power = np.eye(weights.shape[0])
    total = 0.0
    factorial = 1.0
    for k in range(1, order + 1):
        power = power @ squared
        factorial *= k
        total += np.trace(power) / factorial
    return float(total)
