"""Structure-recovery metrics for learned causal graphs.

These quantify how close a learned graph is to the ground truth: structural
Hamming distance, skeleton precision/recall/F1, v-structure agreement, and
the paper's Markov-equivalence check (Definition 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from .graph import binarize, cpdag, markov_equivalent, skeleton, v_structures


@dataclass
class StructureMetrics:
    """Bundle of structure-recovery scores; see :func:`evaluate_structure`."""

    shd: int
    skeleton_precision: float
    skeleton_recall: float
    skeleton_f1: float
    v_structure_precision: float
    v_structure_recall: float
    markov_equivalent: bool
    true_edges: int
    learned_edges: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "shd": self.shd,
            "skeleton_precision": self.skeleton_precision,
            "skeleton_recall": self.skeleton_recall,
            "skeleton_f1": self.skeleton_f1,
            "v_structure_precision": self.v_structure_precision,
            "v_structure_recall": self.v_structure_recall,
            "markov_equivalent": float(self.markov_equivalent),
            "true_edges": self.true_edges,
            "learned_edges": self.learned_edges,
        }


def structural_hamming_distance(true_graph: np.ndarray,
                                learned_graph: np.ndarray,
                                threshold: float = 0.0) -> int:
    """SHD: additions + deletions + reversals needed to match ``true_graph``.

    A reversed edge counts once (not as one deletion plus one addition),
    following the convention in the causal-discovery literature.
    """
    true_bin = binarize(true_graph, threshold)
    learned_bin = binarize(learned_graph, threshold)
    if true_bin.shape != learned_bin.shape:
        raise ValueError("graphs must have the same shape")

    diff = np.abs(true_bin - learned_bin)
    # A reversal shows up as a 1 in both (i, j) and (j, i) of the diff.
    reversals = ((diff == 1) & (diff.T == 1) &
                 ((true_bin == 1) & (learned_bin.T == 1)).T).sum() // 1
    reversal_pairs = (((true_bin == 1) & (learned_bin == 0) &
                       (learned_bin.T == 1) & (true_bin.T == 0))).sum()
    plain_mismatches = diff.sum() - 2 * reversal_pairs
    del reversals
    return int(plain_mismatches + reversal_pairs)


def skeleton_scores(true_graph: np.ndarray, learned_graph: np.ndarray,
                    threshold: float = 0.0) -> Dict[str, float]:
    """Precision/recall/F1 of undirected adjacency recovery."""
    true_skel = skeleton(true_graph, threshold)
    learned_skel = skeleton(learned_graph, threshold)
    upper = np.triu_indices(true_skel.shape[0], k=1)
    truth = true_skel[upper].astype(bool)
    guess = learned_skel[upper].astype(bool)
    tp = float((truth & guess).sum())
    precision = tp / guess.sum() if guess.sum() else 0.0
    recall = tp / truth.sum() if truth.sum() else 0.0
    f1 = (2 * precision * recall / (precision + recall)
          if precision + recall else 0.0)
    return {"precision": precision, "recall": recall, "f1": f1}


def v_structure_scores(true_graph: np.ndarray, learned_graph: np.ndarray,
                       threshold: float = 0.0) -> Dict[str, float]:
    """Precision/recall of collider recovery; both 1.0 when truth has none."""
    true_vs = v_structures(true_graph, threshold)
    learned_vs = v_structures(learned_graph, threshold)
    if not true_vs and not learned_vs:
        return {"precision": 1.0, "recall": 1.0}
    tp = len(true_vs & learned_vs)
    precision = tp / len(learned_vs) if learned_vs else (1.0 if not true_vs else 0.0)
    recall = tp / len(true_vs) if true_vs else 1.0
    return {"precision": precision, "recall": recall}


def evaluate_structure(true_graph: np.ndarray, learned_graph: np.ndarray,
                       threshold: float = 0.0) -> StructureMetrics:
    """Full structure-recovery report comparing a learned graph to truth."""
    skel = skeleton_scores(true_graph, learned_graph, threshold)
    vs = v_structure_scores(true_graph, learned_graph, threshold)
    return StructureMetrics(
        shd=structural_hamming_distance(true_graph, learned_graph, threshold),
        skeleton_precision=skel["precision"],
        skeleton_recall=skel["recall"],
        skeleton_f1=skel["f1"],
        v_structure_precision=vs["precision"],
        v_structure_recall=vs["recall"],
        markov_equivalent=markov_equivalent(true_graph, learned_graph, threshold),
        true_edges=int(binarize(true_graph, threshold).sum()),
        learned_edges=int(binarize(learned_graph, threshold).sum()),
    )


def cpdag_agreement(true_graph: np.ndarray, learned_graph: np.ndarray,
                    threshold: float = 0.0) -> float:
    """Fraction of entries on which the two CPDAG patterns agree."""
    pattern_true = cpdag(true_graph, threshold)
    pattern_learned = cpdag(learned_graph, threshold)
    return float((pattern_true == pattern_learned).mean())
