"""Empirical verification of Theorem 1 (identifiability up to MEC).

The theorem states that with a sufficiently rich model class, faithfulness,
and small enough L1 weight, the graph minimizing the paper's score is
Markov-equivalent to the ground truth.  We verify the claim empirically:
sample random ground-truth DAGs, generate data from linear SEMs, run
NOTEARS, and measure how often the recovered graph lands in the true MEC
and how structure metrics scale with sample size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from .metrics import StructureMetrics, evaluate_structure
from .notears import notears_linear
from .sem import random_dag, simulate_linear_sem, standardize, weighted_dag


@dataclass
class IdentifiabilityTrial:
    """One ground-truth-vs-recovered comparison."""

    num_nodes: int
    num_samples: int
    seed: int
    metrics: StructureMetrics


@dataclass
class IdentifiabilityReport:
    """Aggregate over trials for a single configuration."""

    num_nodes: int
    num_samples: int
    trials: List[IdentifiabilityTrial] = field(default_factory=list)

    @property
    def mec_recovery_rate(self) -> float:
        if not self.trials:
            return 0.0
        return float(np.mean([t.metrics.markov_equivalent for t in self.trials]))

    @property
    def mean_shd(self) -> float:
        if not self.trials:
            return 0.0
        return float(np.mean([t.metrics.shd for t in self.trials]))

    @property
    def mean_skeleton_f1(self) -> float:
        if not self.trials:
            return 0.0
        return float(np.mean([t.metrics.skeleton_f1 for t in self.trials]))

    def summary(self) -> Dict[str, float]:
        return {
            "num_nodes": self.num_nodes,
            "num_samples": self.num_samples,
            "mec_recovery_rate": self.mec_recovery_rate,
            "mean_shd": self.mean_shd,
            "mean_skeleton_f1": self.mean_skeleton_f1,
        }


def run_identifiability_trial(num_nodes: int, num_samples: int, seed: int,
                              edge_prob: Optional[float] = None,
                              lambda1: float = 0.05,
                              weight_threshold: float = 0.3
                              ) -> IdentifiabilityTrial:
    """Sample a truth DAG, simulate data, recover with NOTEARS, score it."""
    rng = np.random.default_rng(seed)
    if edge_prob is None:
        edge_prob = min(0.5, 2.0 / max(num_nodes - 1, 1))
    truth = random_dag(num_nodes, edge_prob, rng)
    weights = weighted_dag(truth, rng)
    data = standardize(simulate_linear_sem(weights, num_samples, rng))
    result = notears_linear(data, lambda1=lambda1,
                            weight_threshold=weight_threshold)
    metrics = evaluate_structure(truth, result.adjacency)
    return IdentifiabilityTrial(num_nodes=num_nodes, num_samples=num_samples,
                                seed=seed, metrics=metrics)


def run_identifiability_study(num_nodes: int = 8,
                              sample_sizes: Sequence[int] = (100, 500, 2000),
                              trials_per_size: int = 3,
                              base_seed: int = 0) -> List[IdentifiabilityReport]:
    """Sweep sample sizes; recovery should improve monotonically (Theorem 1)."""
    reports = []
    for num_samples in sample_sizes:
        report = IdentifiabilityReport(num_nodes=num_nodes,
                                       num_samples=num_samples)
        for trial_idx in range(trials_per_size):
            seed = base_seed * 10_000 + num_samples + trial_idx
            report.trials.append(
                run_identifiability_trial(num_nodes, num_samples, seed))
        reports.append(report)
    return reports
