"""d-separation queries on DAGs.

Used by the identifiability analysis (Theorem 1 conditions) and exposed as a
library feature for inspecting learned graphs.  The implementation follows
the standard "reachable via active paths" algorithm (Koller & Friedman,
Algorithm 3.1) rather than deferring to networkx, so the logic is testable
in isolation; a networkx cross-check is used in the test-suite.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Set, Tuple

import numpy as np

from .graph import binarize, descendants, validate_adjacency


def d_separated(matrix: np.ndarray, xs: Iterable[int], ys: Iterable[int],
                zs: Iterable[int] = (), threshold: float = 0.0) -> bool:
    """True if every path between ``xs`` and ``ys`` is blocked given ``zs``.

    ``matrix[i, j] != 0`` encodes the edge ``i -> j``.
    """
    binary = binarize(validate_adjacency(matrix), threshold)
    n = binary.shape[0]
    x_set, y_set, z_set = set(xs), set(ys), set(zs)
    for group_name, group in (("X", x_set), ("Y", y_set), ("Z", z_set)):
        bad = [v for v in group if not 0 <= v < n]
        if bad:
            raise ValueError(f"{group_name} contains out-of-range nodes: {bad}")
    if x_set & y_set:
        return False
    if (x_set & z_set) or (y_set & z_set):
        # Conditioned nodes are trivially separated from everything.
        x_set -= z_set
        y_set -= z_set
        if not x_set or not y_set:
            return True

    # Phase 1: ancestors of Z (to decide whether colliders are unblocked).
    z_ancestors: Set[int] = set(z_set)
    frontier = deque(z_set)
    parents_of = [set(np.nonzero(binary[:, v])[0]) for v in range(n)]
    children_of = [set(np.nonzero(binary[v, :])[0]) for v in range(n)]
    while frontier:
        node = frontier.popleft()
        for parent in parents_of[node]:
            if parent not in z_ancestors:
                z_ancestors.add(parent)
                frontier.append(parent)

    # Phase 2: BFS over (node, direction) states. direction 'up' means we
    # arrived at the node travelling from a child (against edge direction).
    visited: Set[Tuple[int, str]] = set()
    queue: deque = deque((x, "up") for x in x_set)
    while queue:
        node, direction = queue.popleft()
        if (node, direction) in visited:
            continue
        visited.add((node, direction))
        if node in y_set and node not in z_set:
            return False
        if direction == "up" and node not in z_set:
            for parent in parents_of[node]:
                queue.append((parent, "up"))
            for child in children_of[node]:
                queue.append((child, "down"))
        elif direction == "down":
            if node not in z_set:
                for child in children_of[node]:
                    queue.append((child, "down"))
            if node in z_ancestors:
                for parent in parents_of[node]:
                    queue.append((parent, "up"))
    return True


def d_connected(matrix: np.ndarray, xs: Iterable[int], ys: Iterable[int],
                zs: Iterable[int] = (), threshold: float = 0.0) -> bool:
    """Negation of :func:`d_separated`."""
    return not d_separated(matrix, xs, ys, zs, threshold)


def non_descendant_set(matrix: np.ndarray, i: int, j: int,
                       threshold: float = 0.0) -> Set[int]:
    """The set ``L_ij`` from Theorem 1's proof: nodes that are descendants of
    neither ``i`` nor ``j`` (excluding ``i`` and ``j`` themselves)."""
    binary = binarize(matrix, threshold)
    n = binary.shape[0]
    desc = descendants(binary, i) | descendants(binary, j) | {i, j}
    return set(range(n)) - desc
