"""Greedy score-based structure search (GES-style hill climbing).

The paper's §IV cites greedy score-based discovery (Chickering's GES) as
the classical member of the family NOTEARS modernizes.  This module
implements a BIC-scored greedy hill climber over DAG space with the three
standard moves — add, delete, reverse — each accepted only when it keeps
the graph acyclic and improves the decomposable BIC score

    score(G) = Σ_j [ -n/2 · log(RSS_j / n) - (|Pa(j)| + 1)/2 · log n ]

for linear-Gaussian data.  Local scores are cached per (node, parents) so
the search costs O(moves · affected-node refits).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from .graph import is_dag


@dataclass
class GESResult:
    """Outcome of the greedy search."""

    adjacency: np.ndarray
    score: float
    iterations: int
    score_trace: List[float] = field(default_factory=list)


class _LocalScorer:
    """Cached BIC local scores for linear-Gaussian node models."""

    def __init__(self, data: np.ndarray) -> None:
        self.data = data
        self.n = data.shape[0]
        self._cache: Dict[Tuple[int, FrozenSet[int]], float] = {}

    def __call__(self, node: int, parents: FrozenSet[int]) -> float:
        key = (node, parents)
        if key in self._cache:
            return self._cache[key]
        y = self.data[:, node]
        if parents:
            x = self.data[:, sorted(parents)]
            coef, residuals, rank, _ = np.linalg.lstsq(
                np.column_stack([x, np.ones(self.n)]), y, rcond=None)
            if len(residuals):
                rss = float(residuals[0])
            else:
                pred = np.column_stack([x, np.ones(self.n)]) @ coef
                rss = float(((y - pred) ** 2).sum())
        else:
            rss = float(((y - y.mean()) ** 2).sum())
        rss = max(rss, 1e-12)
        k = len(parents) + 1
        score = (-0.5 * self.n * np.log(rss / self.n)
                 - 0.5 * k * np.log(self.n))
        self._cache[key] = score
        return score


def _parents_of(adjacency: np.ndarray, node: int) -> FrozenSet[int]:
    return frozenset(np.nonzero(adjacency[:, node])[0].tolist())


def ges_search(data: np.ndarray, max_iterations: int = 200,
               max_parents: Optional[int] = None) -> GESResult:
    """Greedy BIC hill climbing over DAGs.

    Starts from the empty graph and repeatedly applies the single best
    score-improving move among all legal adds, deletes and reversals.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ValueError(f"data must be 2-d, got shape {data.shape}")
    m = data.shape[1]
    limit = m - 1 if max_parents is None else max_parents
    scorer = _LocalScorer(data)
    adjacency = np.zeros((m, m), dtype=np.int64)
    total = sum(scorer(j, frozenset()) for j in range(m))
    trace = [total]

    iterations = 0
    for iterations in range(1, max_iterations + 1):
        best_gain = 1e-9
        best_move = None
        for i in range(m):
            for j in range(m):
                if i == j:
                    continue
                parents_j = _parents_of(adjacency, j)
                if adjacency[i, j]:
                    # Delete i -> j.
                    gain = (scorer(j, parents_j - {i})
                            - scorer(j, parents_j))
                    if gain > best_gain:
                        best_gain, best_move = gain, ("del", i, j)
                    # Reverse to j -> i.
                    parents_i = _parents_of(adjacency, i)
                    if len(parents_i) < limit:
                        candidate = adjacency.copy()
                        candidate[i, j] = 0
                        candidate[j, i] = 1
                        if is_dag(candidate):
                            gain = (scorer(j, parents_j - {i})
                                    - scorer(j, parents_j)
                                    + scorer(i, parents_i | {j})
                                    - scorer(i, parents_i))
                            if gain > best_gain:
                                best_gain, best_move = gain, ("rev", i, j)
                else:
                    # Add i -> j.
                    if len(parents_j) >= limit:
                        continue
                    candidate = adjacency.copy()
                    candidate[i, j] = 1
                    if not is_dag(candidate):
                        continue
                    gain = (scorer(j, parents_j | {i})
                            - scorer(j, parents_j))
                    if gain > best_gain:
                        best_gain, best_move = gain, ("add", i, j)

        if best_move is None:
            break
        kind, i, j = best_move
        if kind == "add":
            adjacency[i, j] = 1
        elif kind == "del":
            adjacency[i, j] = 0
        else:
            adjacency[i, j] = 0
            adjacency[j, i] = 1
        total += best_gain
        trace.append(total)

    return GESResult(adjacency=adjacency, score=float(total),
                     iterations=iterations, score_trace=trace)
