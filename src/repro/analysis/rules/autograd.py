"""Autograd-specific lint rules (GL001–GL003, GL007).

These target the failure modes of the hand-rolled reverse-mode engine in
:mod:`repro.nn.tensor`:

* a backward closure that pushes a broadcast-shaped gradient into an
  operand without summing it back down (``_unbroadcast``) silently corrupts
  every downstream update;
* numpy math on ``Tensor.data`` inside the differentiable layers detaches
  the value from the graph, so its gradient is silently dropped;
* in-place writes to ``.data``/``.grad`` outside the sanctioned engine
  sites invalidate values already captured by backward closures;
* code that assumes ``param.grad`` is a dense ``ndarray`` breaks on the
  row-sparse gradients embedding gathers now produce
  (:mod:`repro.nn.sparse`).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from ..report import Finding
from .base import LintContext, Rule, attribute_chain, contains_data_attribute

#: Files that implement differentiable ops on top of Tensor and therefore
#: must route every value through the graph (GL002 scope).
GRAPH_LAYER_SUFFIXES = ("nn/functional.py", "nn/rnn.py", "nn/attention.py")

#: Files allowed to mutate ``.data``/``.grad`` in place: the engine itself,
#: the optimizers (parameter updates are the whole point) and the module
#: plumbing (``load_state_dict``, padding-row re-zeroing) — GL003 scope.
SANCTIONED_MUTATION_SUFFIXES = ("nn/tensor.py", "nn/optim.py", "nn/module.py")

#: Files allowed to touch the concrete gradient representation directly:
#: the engine, the sparse-gradient module, the Parameter/Module layer, the
#: optimizers (which dispatch on the representation) and the runtime
#: sanitizer — GL007 scope.
SPARSE_AWARE_SUFFIXES = ("nn/tensor.py", "nn/sparse.py", "nn/module.py",
                         "nn/optim.py", "analysis/sanitizer.py")


def _accumulate_target(call: ast.Call) -> Optional[str]:
    """Name of ``X`` in an ``X._accumulate(...)`` call, else ``None``."""
    func = call.func
    if (isinstance(func, ast.Attribute) and func.attr == "_accumulate"
            and isinstance(func.value, ast.Name)):
        return func.value.id
    return None


class MissingUnbroadcastRule(Rule):
    """GL001 — backward closure accumulates a foreign-operand product raw.

    Inside a ``def backward(grad)`` closure, ``X._accumulate(expr)`` where
    ``expr`` references ``.data`` of a tensor *other than X* must wrap the
    expression in ``_unbroadcast(..., X.shape)``: the foreign operand may
    have been broadcast during the forward pass, and the raw product then
    carries the broadcast shape instead of ``X``'s.
    """

    id = "GL001"
    name = "missing-unbroadcast"
    severity = "error"
    description = ("backward closure accumulates a gradient built from "
                   "another operand's .data without _unbroadcast")
    node_types = (ast.FunctionDef,)

    def check_node(self, node: ast.AST, ctx: LintContext) -> Iterator[Finding]:
        assert isinstance(node, ast.FunctionDef)
        if node.name != "backward":
            return
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            target = _accumulate_target(call)
            if target is None or not call.args:
                continue
            arg = call.args[0]
            if self._is_guarded(arg):
                continue
            foreign = self._foreign_data_reference(arg, target)
            if foreign is not None:
                yield self.finding(
                    ctx, call,
                    f"`{target}._accumulate(...)` uses `{foreign}.data` "
                    f"without `_unbroadcast(..., {target}.shape)`; if "
                    f"`{foreign}` was broadcast in the forward pass the "
                    f"gradient keeps the broadcast shape")

    @staticmethod
    def _is_guarded(arg: ast.AST) -> bool:
        """True when the accumulated expression is `_unbroadcast(...)`."""
        return (isinstance(arg, ast.Call)
                and isinstance(arg.func, ast.Name)
                and arg.func.id == "_unbroadcast")

    @staticmethod
    def _foreign_data_reference(arg: ast.AST, target: str) -> Optional[str]:
        for sub in ast.walk(arg):
            if (isinstance(sub, ast.Attribute) and sub.attr == "data"
                    and isinstance(sub.value, ast.Name)
                    and sub.value.id != target):
                return sub.value.id
        return None


class GraphBypassRule(Rule):
    """GL002 — numpy math on ``Tensor.data`` inside differentiable layers.

    In the graph-building layers (``nn/functional.py``, ``nn/rnn.py``,
    ``nn/attention.py``) any ``np.fn(x.data)`` or ``x.data.method()``
    produces a value the autograd graph cannot see.  Intentional detaches
    (e.g. the stable-softmax max shift, whose gradient contribution cancels)
    must carry an inline suppression explaining why.
    """

    id = "GL002"
    name = "graph-bypass"
    severity = "error"
    description = ("direct numpy call on Tensor.data inside a "
                   "differentiable layer bypasses the autograd graph")
    node_types = (ast.Call,)

    def applies_to(self, ctx: LintContext) -> bool:
        return ctx.path_endswith(*GRAPH_LAYER_SUFFIXES)

    def check_node(self, node: ast.AST, ctx: LintContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        func = node.func
        # Pattern (a): method call on a `.data` chain — `x.data.max(...)`.
        if isinstance(func, ast.Attribute) and contains_data_attribute(func):
            yield self.finding(
                ctx, node,
                f"numpy method `{func.attr}` called directly on Tensor.data "
                f"— the result is detached from the autograd graph")
            return
        # Pattern (b): `np.fn(... x.data ...)`.
        chain = attribute_chain(func)
        if chain.startswith(("np.", "numpy.")):
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if contains_data_attribute(arg):
                    yield self.finding(
                        ctx, node,
                        f"`{chain}` applied to Tensor.data — the result is "
                        f"detached from the autograd graph")
                    break


class InPlaceMutationRule(Rule):
    """GL003 — in-place write to ``.data``/``.grad`` outside the engine.

    Backward closures capture forward values by reference; mutating a
    tensor's ``.data`` after graph construction silently changes what the
    closure will read.  Only the engine, optimizers and module plumbing are
    sanctioned; everything else needs a justifying suppression.
    """

    id = "GL003"
    name = "inplace-mutation"
    severity = "error"
    description = ("in-place mutation of Tensor.data/.grad outside "
                   "sanctioned engine/optimizer sites")
    node_types = (ast.Assign, ast.AugAssign)

    def applies_to(self, ctx: LintContext) -> bool:
        return not ctx.path_endswith(*SANCTIONED_MUTATION_SUFFIXES)

    def check_node(self, node: ast.AST, ctx: LintContext) -> Iterator[Finding]:
        targets: Tuple[ast.AST, ...]
        if isinstance(node, ast.Assign):
            targets = tuple(node.targets)
        else:
            assert isinstance(node, ast.AugAssign)
            targets = (node.target,)
        for target in targets:
            attr = self._mutated_attribute(target,
                                           augmented=isinstance(node, ast.AugAssign))
            if attr is not None:
                yield self.finding(
                    ctx, node,
                    f"in-place write to `.{attr}` outside the autograd "
                    f"engine/optimizers; backward closures may hold stale "
                    f"references to the old buffer")

    @staticmethod
    def _mutated_attribute(target: ast.AST, augmented: bool) -> Optional[str]:
        # `x.data[...] = v` / `x.data[...] += v` — subscript store.
        if isinstance(target, ast.Subscript):
            inner = target.value
            if isinstance(inner, ast.Attribute) and inner.attr in ("data", "grad"):
                return inner.attr
            return None
        # `x.data += v` / `x.grad += v` — augmented attribute store.
        if augmented and isinstance(target, ast.Attribute) \
                and target.attr in ("data", "grad"):
            return target.attr
        # `x.grad = v` — rebinding the gradient buffer.  Plain `.data = v`
        # assignments are deliberately not flagged: ordinary classes (e.g.
        # dataset wrappers) legitimately own a `data` attribute.
        if not augmented and isinstance(target, ast.Attribute) \
                and target.attr == "grad":
            return target.attr
        return None


def _is_grad_attribute(node: ast.AST) -> bool:
    """True for a bare ``X.grad`` attribute access."""
    return isinstance(node, ast.Attribute) and node.attr == "grad"


def _contains_grad_attribute(node: ast.AST) -> bool:
    """True when any sub-expression reads a ``.grad`` attribute."""
    return any(_is_grad_attribute(sub) for sub in ast.walk(node))


class DenseGradAssumptionRule(Rule):
    """GL007 — code that assumes ``param.grad`` is a dense ``ndarray``.

    Embedding gathers produce :class:`repro.nn.sparse.RowSparseGrad`
    gradients, so ``param.grad`` outside the engine is *either* a dense
    array or a row-sparse object.  Arithmetic on it (``param.grad ** 2``),
    in-place scaling (``param.grad *= s``), attribute access assuming array
    semantics (``param.grad.shape``), indexing, or passing it to numpy all
    silently break (or crash) on the sparse representation.  Use the
    representation-agnostic helpers in :mod:`repro.nn.sparse` —
    ``grad_sq_sum`` / ``grad_scale_`` / ``grad_all_finite`` /
    ``densify_grad`` — or carry a justifying suppression.
    """

    id = "GL007"
    name = "dense-grad-assumption"
    severity = "error"
    description = ("treats param.grad as a dense ndarray; gradients may be "
                   "row-sparse — use the repro.nn.sparse helpers")
    node_types = (ast.Attribute, ast.AugAssign, ast.BinOp, ast.Call,
                  ast.Subscript)

    #: Representation-agnostic helper names whose arguments may be `.grad`.
    HELPER_NAMES = frozenset({
        "grad_sq_sum", "grad_scale_", "grad_all_finite", "densify_grad",
        "isinstance", "type", "id",
    })

    def applies_to(self, ctx: LintContext) -> bool:
        return not ctx.path_endswith(*SPARSE_AWARE_SUFFIXES)

    def check_node(self, node: ast.AST, ctx: LintContext) -> Iterator[Finding]:
        if isinstance(node, ast.Attribute):
            # `x.grad.<attr>` — ndarray attribute/method access.
            if _is_grad_attribute(node.value):
                yield self.finding(
                    ctx, node,
                    f"`.grad.{node.attr}` assumes a dense ndarray gradient; "
                    f"use the repro.nn.sparse helpers (grad_sq_sum, "
                    f"grad_scale_, grad_all_finite, densify_grad)")
            return
        if isinstance(node, ast.AugAssign):
            # `x.grad *= s` / `x.grad[...] += v` — in-place dense update.
            target = node.target
            subscript = (isinstance(target, ast.Subscript)
                         and _is_grad_attribute(target.value))
            if _is_grad_attribute(target) or subscript:
                yield self.finding(
                    ctx, node,
                    "in-place arithmetic on `.grad` assumes a dense ndarray "
                    "gradient; use grad_scale_/densify_grad from "
                    "repro.nn.sparse")
            return
        if isinstance(node, ast.BinOp):
            # `x.grad ** 2`, `lr * x.grad` — dense arithmetic.
            if _is_grad_attribute(node.left) or _is_grad_attribute(node.right):
                yield self.finding(
                    ctx, node,
                    "arithmetic on `.grad` assumes a dense ndarray "
                    "gradient; use grad_sq_sum/densify_grad from "
                    "repro.nn.sparse")
            return
        if isinstance(node, ast.Subscript):
            # `x.grad[rows]` — dense indexing (also an AugAssign target;
            # only flag bare loads here to avoid double reports).
            if _is_grad_attribute(node.value) \
                    and isinstance(node.ctx, ast.Load):
                yield self.finding(
                    ctx, node,
                    "indexing `.grad` assumes a dense ndarray gradient; "
                    "use densify_grad from repro.nn.sparse")
            return
        assert isinstance(node, ast.Call)
        chain = attribute_chain(node.func)
        if isinstance(node.func, ast.Name) \
                and node.func.id in self.HELPER_NAMES:
            return
        if not chain.startswith(("np.", "numpy.")):
            return
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if _contains_grad_attribute(arg):
                yield self.finding(
                    ctx, node,
                    f"`{chain}` applied to `.grad` assumes a dense ndarray "
                    f"gradient; use the repro.nn.sparse helpers")
                break
