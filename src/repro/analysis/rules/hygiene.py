"""Reproducibility/hygiene lint rules (GL004–GL006, GL008).

* GL004 — legacy ``np.random.*`` module-level calls draw from hidden global
  state, which breaks the repo-wide determinism contract (every RNG must be
  an explicitly seeded ``np.random.Generator``).
* GL005 — bare/swallowed exceptions hide the very failures (non-finite
  losses, shape errors) this subsystem exists to surface.
* GL006 — ``__all__`` drift in package ``__init__`` files: names exported
  but never bound, or re-exported names missing from ``__all__``.
* GL008 — materialising a whole memmapped shard with ``np.asarray`` in
  :mod:`repro.data`, defeating the event log's bounded-memory contract.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from ..report import Finding
from .base import LintContext, Rule, attribute_chain

#: The only `np.random` attributes that may be *called* — everything else
#: (seed, rand, randn, RandomState, ...) goes through hidden global state.
SANCTIONED_NP_RANDOM_CALLS = frozenset({"default_rng", "SeedSequence"})

#: numpy constructors that copy their argument into resident memory —
#: applied to a full memmap they read the entire shard off disk (GL008).
MEMMAP_MATERIALIZERS = frozenset({"array", "asarray", "asanyarray",
                                  "ascontiguousarray"})


class LegacyNumpyRandomRule(Rule):
    """GL004 — module-level ``np.random.*`` call instead of a Generator."""

    id = "GL004"
    name = "legacy-np-random"
    severity = "error"
    description = ("np.random.* module-level call uses hidden global state; "
                   "use an explicitly seeded np.random.default_rng(seed)")
    node_types = (ast.Call,)

    def check_node(self, node: ast.AST, ctx: LintContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        chain = attribute_chain(node.func)
        if not chain:
            return
        parts = chain.split(".")
        if (len(parts) == 3 and parts[0] in ("np", "numpy")
                and parts[1] == "random"
                and parts[2] not in SANCTIONED_NP_RANDOM_CALLS):
            yield self.finding(
                ctx, node,
                f"`{chain}(...)` draws from numpy's hidden global state; "
                f"pass a seeded `np.random.default_rng(seed)` Generator "
                f"instead")


class SwallowedExceptionRule(Rule):
    """GL005 — bare ``except:`` or a broad handler whose body is ``pass``."""

    id = "GL005"
    name = "swallowed-exception"
    severity = "error"
    description = ("bare except / broad exception handler that silently "
                   "swallows the error")
    node_types = (ast.ExceptHandler,)

    _BROAD = ("Exception", "BaseException")

    def check_node(self, node: ast.AST, ctx: LintContext) -> Iterator[Finding]:
        assert isinstance(node, ast.ExceptHandler)
        if node.type is None:
            yield self.finding(
                ctx, node,
                "bare `except:` catches SystemExit/KeyboardInterrupt too; "
                "name the exception type")
            return
        if self._is_broad(node.type) and self._body_is_noop(node.body):
            yield self.finding(
                ctx, node,
                "broad exception handler swallows the error without "
                "handling or re-raising it")

    def _is_broad(self, type_node: ast.AST) -> bool:
        if isinstance(type_node, ast.Name):
            return type_node.id in self._BROAD
        if isinstance(type_node, ast.Tuple):
            return any(self._is_broad(el) for el in type_node.elts)
        return False

    @staticmethod
    def _body_is_noop(body: List[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, ast.Pass):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
                continue  # docstring or `...`
            return False
        return True


class AllDriftRule(Rule):
    """GL006 — ``__all__`` out of sync with a package ``__init__``'s bindings.

    Errors for names listed in ``__all__`` but never bound (they break
    ``from pkg import *`` and mislead readers); warnings for public names
    re-exported via ``from .module import name`` but absent from
    ``__all__`` (silent API drift).
    """

    id = "GL006"
    name = "all-drift"
    severity = "error"
    description = "__all__ entries not bound in the module, or re-exports missing from __all__"

    def applies_to(self, ctx: LintContext) -> bool:
        return ctx.path_endswith("__init__.py")

    def check_module(self, ctx: LintContext) -> Iterator[Finding]:
        exported = None
        exported_node: ast.AST = ctx.tree
        bound: Set[str] = set()
        reexported: Set[str] = set()
        star_import = False

        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    bound.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(stmt, ast.ImportFrom):
                for alias in stmt.names:
                    if alias.name == "*":
                        star_import = True
                        continue
                    name = alias.asname or alias.name
                    bound.add(name)
                    reexported.add(name)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.ClassDef)):
                bound.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        bound.add(target.id)
                        if target.id == "__all__":
                            exported = self._literal_names(stmt.value)
                            exported_node = stmt
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target,
                                                                ast.Name):
                bound.add(stmt.target.id)

        if exported is None or star_import:
            return  # no __all__ to validate, or bindings unknowable

        for name in exported:
            if name not in bound:
                yield self.finding(
                    ctx, exported_node,
                    f"`{name}` is listed in __all__ but never imported or "
                    f"defined in this module")
        listed = set(exported)
        for name in sorted(reexported):
            if not name.startswith("_") and name not in listed:
                yield Finding(path=ctx.path,
                              line=getattr(exported_node, "lineno", 1), col=1,
                              rule_id=self.id, severity="warning",
                              message=(f"`{name}` is re-exported here but "
                                       f"missing from __all__ (silent API "
                                       f"drift)"))

    @staticmethod
    def _literal_names(value: ast.AST) -> List[str]:
        names: List[str] = []
        if isinstance(value, (ast.List, ast.Tuple)):
            for el in value.elts:
                if isinstance(el, ast.Constant) and isinstance(el.value, str):
                    names.append(el.value)
        return names


class MemmapInflationRule(Rule):
    """GL008 — ``np.asarray`` (and friends) on a full memmap in repro.data.

    The out-of-core event log hands out ``numpy`` memmaps —
    ``np.load(..., mmap_mode=...)`` results and ``EventLogStore.column``
    views.  Wrapping one in ``np.asarray`` / ``np.array`` /
    ``np.ascontiguousarray`` copies the *entire shard* into resident
    memory, which is exactly the O(corpus) allocation the eventlog
    backend exists to avoid (docs/DATA.md).  Slice the memmap first
    (``col[start:stop]``) so only the touched window is materialised.

    Detection is flow-insensitive within a file: a name is tainted once
    it is ever bound to a memmap source, and any materialiser call whose
    first argument is a tainted name (or a memmap source directly) is
    flagged.  Genuinely intentional full reads take an inline
    ``# gradlint: disable=GL008`` with a justification.
    """

    id = "GL008"
    name = "memmap-inflation"
    severity = "error"
    description = ("np.asarray/np.array on a full memmap materialises the "
                   "whole shard in memory; slice the memmap and convert "
                   "the window instead")

    def applies_to(self, ctx: LintContext) -> bool:
        return "repro/data/" in ctx.posix_path

    def check_module(self, ctx: LintContext) -> Iterator[Finding]:
        tainted: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign) and self._is_source(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        tainted.add(target.id)
            elif (isinstance(node, ast.AnnAssign)
                    and node.value is not None
                    and self._is_source(node.value)
                    and isinstance(node.target, ast.Name)):
                tainted.add(node.target.id)

        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call) and node.args):
                continue
            chain = attribute_chain(node.func)
            parts = chain.split(".")
            if not (len(parts) == 2 and parts[0] in ("np", "numpy")
                    and parts[1] in MEMMAP_MATERIALIZERS):
                continue
            arg = node.args[0]
            if self._is_source(arg):
                yield self.finding(
                    ctx, node,
                    f"`{chain}(...)` directly materialises a memmap source; "
                    f"keep the memmap and convert only sliced windows")
            elif isinstance(arg, ast.Name) and arg.id in tainted:
                yield self.finding(
                    ctx, node,
                    f"`{chain}({arg.id})` reads the whole memmapped shard "
                    f"into memory; slice `{arg.id}` first and convert the "
                    f"window")

    @staticmethod
    def _is_source(node: ast.AST) -> bool:
        """True for ``np.load(..., mmap_mode=...)`` or ``*.column(...)``."""
        if not isinstance(node, ast.Call):
            return False
        chain = attribute_chain(node.func)
        if chain in ("np.load", "numpy.load"):
            return any(
                kw.arg == "mmap_mode"
                and not (isinstance(kw.value, ast.Constant)
                         and kw.value.value is None)
                for kw in node.keywords)
        return isinstance(node.func, ast.Attribute) and node.func.attr == "column"
