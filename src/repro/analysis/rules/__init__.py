"""Rule registry for the gradlint engine.

Rules are instantiated once and shared across files; they hold no per-file
state (everything flows through :class:`~repro.analysis.rules.base.LintContext`).
"""

from .autograd import (GRAPH_LAYER_SUFFIXES, SANCTIONED_MUTATION_SUFFIXES,
                       SPARSE_AWARE_SUFFIXES, DenseGradAssumptionRule,
                       GraphBypassRule, InPlaceMutationRule,
                       MissingUnbroadcastRule)
from .base import LintContext, Rule, attribute_chain, contains_data_attribute
from .concurrency import (LOCK_FACTORY_NAMES, LOCK_PROXY_SUFFIXES,
                          MUTATING_METHODS, BareAcquireRule,
                          BlockingCallUnderLockRule, LockOrderInversionRule,
                          ThreadOwnershipRule, UnguardedSharedMutationRule)
from .hygiene import (MEMMAP_MATERIALIZERS, SANCTIONED_NP_RANDOM_CALLS,
                      AllDriftRule, LegacyNumpyRandomRule,
                      MemmapInflationRule, SwallowedExceptionRule)


def all_rules():
    """Fresh instances of every registered rule, ordered by family then id."""
    return [
        MissingUnbroadcastRule(),
        GraphBypassRule(),
        InPlaceMutationRule(),
        LegacyNumpyRandomRule(),
        SwallowedExceptionRule(),
        AllDriftRule(),
        DenseGradAssumptionRule(),
        MemmapInflationRule(),
        UnguardedSharedMutationRule(),
        BareAcquireRule(),
        BlockingCallUnderLockRule(),
        LockOrderInversionRule(),
        ThreadOwnershipRule(),
    ]


__all__ = [
    "Rule", "LintContext", "attribute_chain", "contains_data_attribute",
    "MissingUnbroadcastRule", "GraphBypassRule", "InPlaceMutationRule",
    "DenseGradAssumptionRule",
    "LegacyNumpyRandomRule", "SwallowedExceptionRule", "AllDriftRule",
    "MemmapInflationRule",
    "UnguardedSharedMutationRule", "BareAcquireRule",
    "BlockingCallUnderLockRule", "LockOrderInversionRule",
    "ThreadOwnershipRule",
    "GRAPH_LAYER_SUFFIXES", "SANCTIONED_MUTATION_SUFFIXES",
    "SPARSE_AWARE_SUFFIXES", "SANCTIONED_NP_RANDOM_CALLS",
    "MEMMAP_MATERIALIZERS",
    "LOCK_FACTORY_NAMES", "LOCK_PROXY_SUFFIXES", "MUTATING_METHODS",
    "all_rules",
]
