"""Rule protocol and lint context for the gradlint engine.

A rule declares which AST node types it wants (``node_types``) and yields
:class:`~repro.analysis.report.Finding` objects from :meth:`check_node`;
rules that need a whole-module view (e.g. ``__all__`` consistency) override
:meth:`check_module` instead.  The engine walks each file's AST exactly
once and dispatches nodes to every interested rule.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, List, Tuple

from ..report import Finding


@dataclass
class LintContext:
    """Everything a rule may inspect about the file being linted."""

    path: str
    tree: ast.Module
    source: str
    lines: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    @property
    def posix_path(self) -> str:
        return self.path.replace("\\", "/")

    def path_endswith(self, *suffixes: str) -> bool:
        return any(self.posix_path.endswith(suffix) for suffix in suffixes)


class Rule:
    """Base class for gradlint rules.

    Subclasses set the class attributes and implement ``check_node`` and/or
    ``check_module``.  ``applies_to`` lets a rule scope itself to specific
    files (e.g. autograd-layer modules only).
    """

    id: str = "GL000"
    name: str = "unnamed"
    severity: str = "error"
    description: str = ""
    #: AST node classes routed to ``check_node``; empty means module-only.
    node_types: Tuple[type, ...] = ()

    def applies_to(self, ctx: LintContext) -> bool:
        return True

    def check_node(self, node: ast.AST, ctx: LintContext) -> Iterator[Finding]:
        return iter(())

    def check_module(self, ctx: LintContext) -> Iterator[Finding]:
        return iter(())

    def finding(self, ctx: LintContext, node: ast.AST, message: str) -> Finding:
        return Finding(path=ctx.path, line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0) + 1,
                       rule_id=self.id, severity=self.severity,
                       message=message)


def attribute_chain(node: ast.AST) -> str:
    """Dotted name of an attribute chain (``np.random.seed``), or ``""``.

    Anything that is not a pure ``Name``/``Attribute`` chain (calls,
    subscripts) terminates the walk and yields an empty string.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def contains_data_attribute(node: ast.AST) -> bool:
    """True when any ``<expr>.data`` access appears in the subtree."""
    return any(isinstance(sub, ast.Attribute) and sub.attr == "data"
               for sub in ast.walk(node))
