"""Concurrency lint rules (CL001–CL005) — the racelint family.

The serve and parallel layers keep served scores bitwise-equal to offline
eval under concurrent mutation (hot swaps, per-user session appends,
micro-batch scoring).  That contract is enforced by a small set of locks,
and these rules police the locking discipline statically:

* CL001 — a class that owns a ``threading.Lock``/``RLock``/``Condition``
  mutates underscore-prefixed shared state outside a ``with self._lock:``
  block;
* CL002 — bare ``.acquire()``/``.release()`` pairs instead of ``with``
  (not exception-safe, invisible to the lock-order analysis);
* CL003 — a blocking call (thread/worker ``join``, queue ``get``/``put``,
  ``time.sleep``, foreign ``wait``, socket I/O) while holding a lock;
* CL004 — inconsistent lock acquisition order: the static lock-order
  graph built from nested ``with`` blocks contains a cycle;
* CL005 — a ``Thread``/``Process`` constructed without an explicit
  ``daemon=`` argument (lifecycle ownership must be stated).

Two conventions keep intentional patterns lint-clean without suppressions:

* methods whose name ends in ``_locked`` are exempt from CL001 — the
  suffix documents the "caller holds the lock" contract;
* ``threading.local()`` attributes are exempt from CL001 — they are
  thread-private by construction.

Everything else uses the standard ``# gradlint: disable=CL00x — why``
suppression syntax.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..report import Finding
from .base import LintContext, Rule, attribute_chain

#: ``threading``/``multiprocessing`` factories whose result is a lock the
#: class is considered to *own* (CL001 applies, ``with self.<attr>:`` guards).
LOCK_FACTORY_NAMES = frozenset({
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"})

#: Factories whose result is thread-private state — exempt from CL001.
THREADLOCAL_FACTORY_NAMES = frozenset({"local"})

#: Container methods that mutate their receiver in place (CL001 scope).
MUTATING_METHODS = frozenset({
    "append", "appendleft", "extend", "insert", "remove", "pop", "popitem",
    "clear", "update", "setdefault", "add", "discard", "move_to_end",
    "sort", "reverse"})

#: Name fragments that mark a ``with`` context expression as lock-like even
#: without class-level ownership information (CL003/CL004 scope).
LOCKISH_NAME_TOKENS = ("lock", "cond", "mutex", "sem")

#: Files implementing the lock instrumentation layer itself: the runtime
#: thread sanitizer must delegate ``acquire``/``release``/``wait`` to the
#: locks it proxies, which is exactly what CL002/CL003 forbid elsewhere.
LOCK_PROXY_SUFFIXES = ("analysis/concurrency.py",)


# ----------------------------------------------------------------------
# Module / class lock model
# ----------------------------------------------------------------------
def _import_model(tree: ast.Module) -> Tuple[Set[str], Dict[str, str]]:
    """(module aliases for threading/multiprocessing, direct factory names).

    ``import threading as t`` contributes ``"t"`` to the alias set;
    ``from threading import Lock as L`` contributes ``{"L": "Lock"}``.
    """
    modules: Set[str] = set()
    direct: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in ("threading", "multiprocessing"):
                    modules.add(alias.asname or root)
        elif isinstance(node, ast.ImportFrom):
            if (node.module or "").split(".")[0] not in ("threading",
                                                         "multiprocessing"):
                continue
            for alias in node.names:
                direct[alias.asname or alias.name] = alias.name
    return modules, direct


def _factory_of(value: ast.AST, modules: Set[str],
                direct: Dict[str, str]) -> Optional[str]:
    """Factory name (``"Lock"``, ``"local"``, ...) when ``value`` is a call
    to a threading/multiprocessing constructor, else ``None``."""
    if not isinstance(value, ast.Call):
        return None
    chain = attribute_chain(value.func)
    if not chain:
        return None
    parts = chain.split(".")
    if len(parts) == 1 and parts[0] in direct:
        return direct[parts[0]]
    if len(parts) == 2 and parts[0] in modules:
        return parts[1]
    return None


def _class_lock_model(cls: ast.ClassDef, modules: Set[str],
                      direct: Dict[str, str]) -> Tuple[Set[str], Set[str]]:
    """(lock attrs, thread-local attrs) assigned anywhere in the class."""
    locks: Set[str] = set()
    locals_: Set[str] = set()
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign):
            continue
        factory = _factory_of(node.value, modules, direct)
        if factory is None:
            continue
        for target in node.targets:
            if (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                if factory in LOCK_FACTORY_NAMES:
                    locks.add(target.attr)
                elif factory in THREADLOCAL_FACTORY_NAMES:
                    locals_.add(target.attr)
    return locks, locals_


def _self_root_attr(node: ast.AST) -> Optional[str]:
    """First attribute above ``self`` in a ``self.<a>(.b | [i])*`` chain."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        parent = node.value
        if (isinstance(node, ast.Attribute)
                and isinstance(parent, ast.Name) and parent.id == "self"):
            return node.attr
        node = parent
    return None


def _with_guards_self(node: ast.With, lock_attrs: Set[str]) -> bool:
    """True when any ``with`` item is a bare ``self.<owned lock>``."""
    for item in node.items:
        expr = item.context_expr
        if (isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self" and expr.attr in lock_attrs):
            return True
    return False


def _lock_identity(expr: ast.AST, class_name: Optional[str],
                   lock_attrs: Set[str]) -> Optional[Tuple[str, str]]:
    """``(identity, display)`` when ``expr`` names a lock, else ``None``.

    Identity is class-qualified for ``self.<attr>`` (so two methods of one
    class agree on the node name); display is the source spelling.
    """
    chain = attribute_chain(expr)
    if not chain:
        return None
    is_self_attr = (isinstance(expr, ast.Attribute)
                    and isinstance(expr.value, ast.Name)
                    and expr.value.id == "self")
    if is_self_attr and expr.attr in lock_attrs:
        qualifier = class_name or "<module>"
        return f"{qualifier}.{expr.attr}", chain
    last = chain.split(".")[-1].lower()
    if any(token in last for token in LOCKISH_NAME_TOKENS):
        if is_self_attr and class_name:
            return f"{class_name}.{expr.attr}", chain
        return chain, chain
    return None


# ----------------------------------------------------------------------
# CL001 — unguarded mutation of shared state in lock-owning classes
# ----------------------------------------------------------------------
class UnguardedSharedMutationRule(Rule):
    """CL001 — write to ``self._*`` shared state outside ``with self._lock:``.

    Scope: classes that own at least one threading lock.  ``__init__`` is
    exempt (construction happens-before publication), as are methods whose
    name ends in ``_locked`` (the caller-holds-the-lock convention) and
    ``threading.local()`` attributes (thread-private).
    """

    id = "CL001"
    name = "unguarded-shared-mutation"
    severity = "error"
    description = ("mutation of self._* shared state outside a `with "
                   "self._lock:` block in a lock-owning class")

    def check_module(self, ctx: LintContext) -> Iterator[Finding]:
        modules, direct = _import_model(ctx.tree)
        if not modules and not direct:
            return
        for cls in ast.walk(ctx.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            lock_attrs, local_attrs = _class_lock_model(cls, modules, direct)
            if not lock_attrs:
                continue
            for method in cls.body:
                if not isinstance(method, (ast.FunctionDef,
                                           ast.AsyncFunctionDef)):
                    continue
                if method.name == "__init__" \
                        or method.name.endswith("_locked"):
                    continue
                yield from self._visit(method.body, cls, method,
                                       lock_attrs, local_attrs, ctx,
                                       guarded=False)

    def _visit(self, body: Sequence[ast.stmt], cls: ast.ClassDef,
               method: ast.AST, lock_attrs: Set[str], local_attrs: Set[str],
               ctx: LintContext, guarded: bool) -> Iterator[Finding]:
        for node in body:
            if isinstance(node, ast.With):
                inner = guarded or _with_guards_self(node, lock_attrs)
                yield from self._visit(node.body, cls, method, lock_attrs,
                                       local_attrs, ctx, inner)
                continue
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                # A nested def runs later, possibly without the lock.
                nested = getattr(node, "body", [])
                if isinstance(nested, list):
                    yield from self._visit(nested, cls, method, lock_attrs,
                                           local_attrs, ctx, guarded=False)
                continue
            if not guarded:
                for attr, site in self._writes(node):
                    if attr.startswith("__") or not attr.startswith("_"):
                        continue
                    if attr in lock_attrs or attr in local_attrs:
                        continue
                    locks = ", ".join(f"self.{a}" for a in sorted(lock_attrs))
                    yield self.finding(
                        ctx, site,
                        f"`{cls.name}.{method.name}` writes shared "
                        f"`self.{attr}` without holding a lock ({locks}); "
                        f"guard the write, rename the method with a "
                        f"`_locked` suffix if the caller holds it, or "
                        f"suppress with a justification")
            # Recurse into compound statements (if/for/try/...).
            for child_body in self._child_bodies(node):
                yield from self._visit(child_body, cls, method, lock_attrs,
                                       local_attrs, ctx, guarded)

    @staticmethod
    def _child_bodies(node: ast.stmt) -> List[List[ast.stmt]]:
        bodies = []
        for field_name in ("body", "orelse", "finalbody", "handlers"):
            value = getattr(node, field_name, None)
            if not value:
                continue
            if field_name == "handlers":
                bodies.extend(h.body for h in value)
            else:
                bodies.append(value)
        return bodies

    def _writes(self, node: ast.stmt) -> Iterator[Tuple[str, ast.AST]]:
        """(root self attribute, anchor node) for every shared-state write."""
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        for target in self._flatten(targets):
            attr = _self_root_attr(target)
            if attr is not None:
                yield attr, target
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            func = node.value.func
            if isinstance(func, ast.Attribute) \
                    and func.attr in MUTATING_METHODS:
                attr = _self_root_attr(func.value)
                if attr is not None:
                    yield attr, node.value

    @staticmethod
    def _flatten(targets: Sequence[ast.AST]) -> Iterator[ast.AST]:
        for target in targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                yield from target.elts
            else:
                yield target


# ----------------------------------------------------------------------
# CL002 — bare acquire()/release()
# ----------------------------------------------------------------------
class BareAcquireRule(Rule):
    """CL002 — ``lock.acquire()``/``lock.release()`` instead of ``with``.

    Manual pairs are not exception-safe (a raise between them leaks the
    lock) and are invisible to the nested-``with`` lock-order analysis
    (CL004) and the runtime sanitizer's scoping.
    """

    id = "CL002"
    name = "bare-acquire-release"
    severity = "error"
    description = ("bare .acquire()/.release() call; use `with lock:` so "
                   "release is exception-safe and order is analyzable")
    node_types = (ast.Call,)

    def applies_to(self, ctx: LintContext) -> bool:
        return not ctx.path_endswith(*LOCK_PROXY_SUFFIXES)

    def check_node(self, node: ast.AST, ctx: LintContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        func = node.func
        if isinstance(func, ast.Attribute) \
                and func.attr in ("acquire", "release"):
            receiver = attribute_chain(func.value) or "<expr>"
            yield self.finding(
                ctx, node,
                f"`{receiver}.{func.attr}()` — use `with {receiver}:` "
                f"instead of manual acquire/release pairs")


# ----------------------------------------------------------------------
# CL003 — blocking call while holding a lock
# ----------------------------------------------------------------------
#: socket-ish blocking method names, matched when the receiver name also
#: looks like a socket/connection.
SOCKET_BLOCKING_METHODS = frozenset({
    "recv", "recv_into", "accept", "connect", "sendall", "makefile"})


class BlockingCallUnderLockRule(Rule):
    """CL003 — a call that can block indefinitely inside a ``with lock:``.

    Waiting on the held condition itself (``with cond: cond.wait()``) is
    the sanctioned pattern — ``Condition.wait`` releases the lock — and is
    exempt as long as no *other* lock is held across the wait.
    """

    id = "CL003"
    name = "blocking-under-lock"
    severity = "error"
    description = ("blocking call (join/queue get/put/sleep/foreign wait/"
                   "socket I/O) while holding a lock")

    def applies_to(self, ctx: LintContext) -> bool:
        return not ctx.path_endswith(*LOCK_PROXY_SUFFIXES)

    def check_module(self, ctx: LintContext) -> Iterator[Finding]:
        modules, direct = _import_model(ctx.tree)
        yield from self._visit(ctx.tree.body, None, set(), [], ctx,
                               modules, direct)

    def _visit(self, body: Sequence[ast.stmt], class_name: Optional[str],
               lock_attrs: Set[str], held: List[str], ctx: LintContext,
               modules: Set[str], direct: Dict[str, str]
               ) -> Iterator[Finding]:
        for node in body:
            if isinstance(node, ast.ClassDef):
                locks, _ = _class_lock_model(node, modules, direct)
                yield from self._visit(node.body, node.name, locks, [],
                                       ctx, modules, direct)
                continue
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._visit(node.body, class_name, lock_attrs,
                                       [], ctx, modules, direct)
                continue
            if isinstance(node, ast.With):
                entered = list(held)
                for item in node.items:
                    ident = _lock_identity(item.context_expr, class_name,
                                           lock_attrs)
                    if ident is not None:
                        entered.append(ident[1])
                yield from self._visit(node.body, class_name, lock_attrs,
                                       entered, ctx, modules, direct)
                continue
            if held:
                # Compound statements recurse below; walking them whole
                # here would double-report calls in their bodies, so only
                # their header expressions (test/iter) are scanned.
                roots = (self._header_exprs(node)
                         if hasattr(node, "body") else [node])
                for root in roots:
                    for call in ast.walk(root):
                        if isinstance(call, ast.Call) \
                                and not self._has_nested_scope(call):
                            yield from self._check_call(call, held, ctx)
            for child_body in UnguardedSharedMutationRule._child_bodies(node):
                yield from self._visit(child_body, class_name, lock_attrs,
                                       held, ctx, modules, direct)

    @staticmethod
    def _header_exprs(node: ast.stmt) -> List[ast.AST]:
        exprs: List[ast.AST] = []
        for attr in ("test", "iter"):
            value = getattr(node, attr, None)
            if value is not None:
                exprs.append(value)
        return exprs

    @staticmethod
    def _has_nested_scope(call: ast.Call) -> bool:
        """Skip calls inside lambdas passed as arguments (run later)."""
        return any(isinstance(sub, ast.Lambda) for sub in ast.walk(call))

    def _check_call(self, call: ast.Call, held: List[str],
                    ctx: LintContext) -> Iterator[Finding]:
        reason = self._blocking_reason(call, held)
        if reason is not None:
            yield self.finding(
                ctx, call,
                f"blocking call `{reason}` while holding "
                f"`{'`, `'.join(held)}`; move the blocking operation "
                f"outside the lock")

    @staticmethod
    def _blocking_reason(call: ast.Call, held: List[str]) -> Optional[str]:
        func = call.func
        chain = attribute_chain(func)
        if chain and chain.split(".")[-1] == "sleep":
            return chain
        if not isinstance(func, ast.Attribute):
            return None
        receiver = attribute_chain(func.value)
        last = receiver.split(".")[-1].lower() if receiver else ""
        attr = func.attr
        if attr == "join" and any(token in last for token in
                                  ("thread", "worker", "proc", "server")):
            return f"{receiver}.join"
        if attr in ("wait", "wait_for"):
            # `with cond: cond.wait()` is sanctioned; waiting while any
            # *other* lock is held blocks that lock for the wait's duration.
            if receiver and all(h == receiver for h in held):
                return None
            return f"{receiver or '<expr>'}.{attr}"
        if attr in ("get", "put") and "queue" in last:
            return f"{receiver}.{attr}"
        if attr in SOCKET_BLOCKING_METHODS \
                and any(token in last for token in ("sock", "conn")):
            return f"{receiver}.{attr}"
        return None


# ----------------------------------------------------------------------
# CL004 — lock-order inversion (static graph from nested `with` blocks)
# ----------------------------------------------------------------------
class LockOrderInversionRule(Rule):
    """CL004 — the module's static lock-order graph contains a cycle.

    Every lexically nested ``with a: with b:`` contributes an ``a → b``
    edge; ``self.<attr>`` locks are class-qualified so all methods of a
    class share one node per lock.  A cycle means two code paths acquire
    the same locks in conflicting orders — the static precondition for
    deadlock.  The finding anchors to the acquisition that closes the
    cycle and names the conflicting site.
    """

    id = "CL004"
    name = "lock-order-inversion"
    severity = "error"
    description = ("nested `with` blocks acquire locks in conflicting "
                   "orders (cycle in the static lock-order graph)")

    def check_module(self, ctx: LintContext) -> Iterator[Finding]:
        modules, direct = _import_model(ctx.tree)
        # (outer, inner) -> (inner With node, outer display, inner display)
        edges: "Dict[Tuple[str, str], Tuple[ast.AST, str, str]]" = {}
        self._collect(ctx.tree.body, None, set(), [], edges, modules, direct)

        graph: Dict[str, Set[str]] = {}
        lines: Dict[Tuple[str, str], int] = {}
        reported: Set[frozenset] = set()
        for (outer, inner), (node, outer_disp, inner_disp) in edges.items():
            path = self._find_path(graph, inner, outer)
            graph.setdefault(outer, set()).add(inner)
            lines[(outer, inner)] = getattr(node, "lineno", 1)
            if path is None:
                continue
            pair = frozenset((outer, inner))
            if pair in reported:
                continue
            reported.add(pair)
            cycle = " -> ".join([outer, inner] + path[1:])
            other_line = lines.get((path[0], path[1]), 0)
            yield self.finding(
                ctx, node,
                f"lock-order inversion: `{inner}` acquired while holding "
                f"`{outer}` here, but line {other_line} acquires them in "
                f"the opposite order (cycle: {cycle}); pick one global "
                f"acquisition order")

    def _collect(self, body: Sequence[ast.stmt], class_name: Optional[str],
                 lock_attrs: Set[str], held: List[Tuple[str, str]],
                 edges, modules: Set[str], direct: Dict[str, str]) -> None:
        for node in body:
            if isinstance(node, ast.ClassDef):
                locks, _ = _class_lock_model(node, modules, direct)
                self._collect(node.body, node.name, locks, [], edges,
                              modules, direct)
                continue
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._collect(node.body, class_name, lock_attrs, [], edges,
                              modules, direct)
                continue
            if isinstance(node, ast.With):
                entered = list(held)
                for item in node.items:
                    ident = _lock_identity(item.context_expr, class_name,
                                           lock_attrs)
                    if ident is None:
                        continue
                    identity, display = ident
                    for outer_id, outer_disp in entered:
                        if outer_id != identity:
                            edges.setdefault(
                                (outer_id, identity),
                                (node, outer_disp, display))
                    entered.append((identity, display))
                self._collect(node.body, class_name, lock_attrs, entered,
                              edges, modules, direct)
                continue
            for child_body in UnguardedSharedMutationRule._child_bodies(node):
                self._collect(child_body, class_name, lock_attrs, held,
                              edges, modules, direct)

    @staticmethod
    def _find_path(graph: Dict[str, Set[str]], start: str,
                   goal: str) -> Optional[List[str]]:
        """DFS path ``start → ... → goal`` in the edge set so far."""
        stack = [(start, [start])]
        seen = set()
        while stack:
            node, path = stack.pop()
            if node == goal:
                return path
            if node in seen:
                continue
            seen.add(node)
            for succ in sorted(graph.get(node, ())):
                stack.append((succ, path + [succ]))
        return None


# ----------------------------------------------------------------------
# CL005 — thread/process without explicit lifecycle ownership
# ----------------------------------------------------------------------
class ThreadOwnershipRule(Rule):
    """CL005 — ``Thread``/``Process`` constructed without ``daemon=``.

    An implicit non-daemon thread blocks interpreter exit if never joined;
    an implicit daemon inherited from the parent dies mid-write.  Either
    way the lifecycle must be stated at the construction site: pass
    ``daemon=`` explicitly and pair it with a bounded ``join`` on the
    owner's shutdown path.
    """

    id = "CL005"
    name = "thread-ownership"
    severity = "error"
    description = ("threading.Thread/multiprocessing.Process created "
                   "without an explicit daemon= lifecycle declaration")
    node_types = (ast.Call,)

    def check_node(self, node: ast.AST, ctx: LintContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        chain = attribute_chain(node.func)
        if not chain:
            return
        last = chain.split(".")[-1]
        if last not in ("Thread", "Process"):
            return
        if any(kw.arg == "daemon" for kw in node.keywords):
            return
        yield self.finding(
            ctx, node,
            f"`{chain}(...)` without an explicit `daemon=`; declare the "
            f"thread's lifecycle (daemon=True/False) and join it with a "
            f"timeout on the owner's shutdown path")
