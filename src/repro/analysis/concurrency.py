"""Runtime thread sanitizer: lock-order, long-hold, and torn-read checks.

The static racelint family (CL001–CL005) polices locking discipline that
is visible in the source; this module polices what actually happens at
runtime.  :func:`threadsan` wraps the locks of a live system in
instrumented proxies that record per-thread acquisition stacks and feed
three detectors:

* **lock-order inversion** — every acquisition of lock B while holding
  lock A adds an ``A → B`` edge to a dynamic lock-order graph; an edge
  that closes a cycle means two code paths disagree on the global
  acquisition order (the precondition for deadlock), and the finding
  carries the recorded stacks of *both* acquiring sites.  Inversions are
  detected even when the conflicting acquisitions never overlap in time —
  this checks order discipline, not whether the deadlock happened to fire.
* **long hold** — a lock held longer than ``long_hold_ms`` (wall clock)
  is reported with the acquisition stack.  ``Condition.wait`` releases
  the underlying lock, so time spent waiting does not count as holding.
* **torn read** — generation-counted artifacts (``CheckpointRegistry``
  bundles, per-user session syncs) are shadow-checked: the generation a
  thread observes must never move backwards *within that thread*, and two
  observations of the same ``(name, generation)`` must agree on the
  artifact's identity fingerprint.  Cross-thread ordering is deliberately
  not checked — observations are timestamped after the lock is released,
  so cross-thread "regressions" would be scheduling artifacts, not bugs.

Like the gradient sanitizer, findings carry recorded tracebacks pointing
at the acquiring/observing sites, and the whole thing uninstalls cleanly
when the ``with threadsan():`` block exits.

Usage::

    from repro.analysis import threadsan

    with threadsan(long_hold_ms=100.0) as san:
        san.instrument_app(app)          # a repro.serve.ServeApp
        ... drive traffic ...
    assert san.findings == [], san.render_report()

or, for arbitrary lock owners::

    with threadsan() as san:
        san.instrument(obj, "_alpha", "_beta")
        ...

Instrumentation swaps instance attributes; only locks reached through the
instrumented attributes are observed.  Restore happens on context exit —
make sure worker threads holding proxied locks are joined first.
"""

from __future__ import annotations

import contextlib
import threading
import time
import traceback
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

#: Default threshold for the long-hold detector, in milliseconds.  Serving
#: locks guard dict lookups and pointer swaps; anything beyond a few
#: milliseconds under a lock is a foreign blocking call (cf. CL003).
DEFAULT_LONG_HOLD_MS = 100.0

#: Stack frames recorded per acquisition (innermost last).
DEFAULT_STACK_DEPTH = 8


@dataclass
class ConcurrencyFinding:
    """One runtime violation with the recorded stacks that produced it."""

    kind: str                   # "lock-inversion" | "long-hold" | "torn-read"
    message: str
    thread: str
    where: Optional[str] = None     # stack of the offending site
    also: Optional[str] = None      # stack of the conflicting site (if any)

    def render(self) -> str:
        parts = [f"[{self.kind}] {self.message} (thread {self.thread})"]
        if self.where:
            parts.append("  offending site:\n" + _indent(self.where))
        if self.also:
            parts.append("  conflicting site:\n" + _indent(self.also))
        return "\n".join(parts)


def _indent(stack: str, prefix: str = "    ") -> str:
    return "\n".join(prefix + line for line in stack.rstrip().splitlines())


class _HeldLock:
    """Per-thread bookkeeping for one currently-held proxy."""

    __slots__ = ("proxy", "since", "stack", "depth")

    def __init__(self, proxy: "LockProxy", since: float, stack: str) -> None:
        self.proxy = proxy
        self.since = since
        self.stack = stack
        self.depth = 1


class LockProxy:
    """Duck-typed stand-in for ``Lock``/``RLock``/``Condition``.

    Delegates every operation to the wrapped primitive and reports
    acquisition/release events to the owning :class:`ThreadSanitizer`.
    ``Condition.wait`` is treated as release-then-reacquire, matching the
    primitive's actual semantics.
    """

    def __init__(self, inner: Any, name: str,
                 sanitizer: "ThreadSanitizer") -> None:
        self._inner = inner
        self._name = name
        self._san = sanitizer

    @property
    def name(self) -> str:
        return self._name

    @property
    def wrapped(self) -> Any:
        return self._inner

    # -- lock protocol ---------------------------------------------------
    def acquire(self, *args: Any, **kwargs: Any) -> bool:
        got = self._inner.acquire(*args, **kwargs)
        if got:
            self._san._on_acquired(self)
        return got

    def release(self) -> None:
        self._san._on_released(self)
        self._inner.release()

    def __enter__(self) -> "LockProxy":
        self.acquire()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.release()

    def locked(self) -> bool:
        return self._inner.locked()

    # -- condition protocol (present only on wrapped Conditions) ---------
    def wait(self, timeout: Optional[float] = None) -> bool:
        self._san._on_released(self, waiting=True)
        try:
            return self._inner.wait(timeout)
        finally:
            self._san._on_acquired(self, reacquired=True)

    def wait_for(self, predicate: Any,
                 timeout: Optional[float] = None) -> Any:
        self._san._on_released(self, waiting=True)
        try:
            return self._inner.wait_for(predicate, timeout)
        finally:
            self._san._on_acquired(self, reacquired=True)

    def notify(self, n: int = 1) -> None:
        self._inner.notify(n)

    def notify_all(self) -> None:
        self._inner.notify_all()


class ThreadSanitizer:
    """Records lock events across threads and turns them into findings."""

    def __init__(self, long_hold_ms: float = DEFAULT_LONG_HOLD_MS,
                 stack_depth: int = DEFAULT_STACK_DEPTH) -> None:
        self.long_hold_ms = float(long_hold_ms)
        self.stack_depth = int(stack_depth)
        self._lock = threading.Lock()   # guards everything below
        self._findings: List[ConcurrencyFinding] = []
        #: dynamic lock-order graph: name -> set of names acquired under it
        self._graph: Dict[str, Set[str]] = {}
        #: (outer, inner) -> (inner-acquisition stack, thread name)
        self._edge_sites: Dict[Tuple[str, str], Tuple[str, str]] = {}
        self._reported_pairs: Set[frozenset] = set()
        #: (name, generation) -> (fingerprint, observing stack, thread)
        self._gen_fingerprints: Dict[Tuple[str, int],
                                     Tuple[Any, str, str]] = {}
        self._patches: List[Tuple[Any, str, Any, bool]] = []
        self._tls = threading.local()

    # -- public surface --------------------------------------------------
    @property
    def findings(self) -> List[ConcurrencyFinding]:
        with self._lock:
            return list(self._findings)

    def render_report(self) -> str:
        findings = self.findings
        if not findings:
            return "threadsan: no findings"
        lines = [f.render() for f in findings]
        lines.append(f"threadsan: {len(findings)} finding(s)")
        return "\n\n".join(lines)

    def wrap_lock(self, lock: Any, name: str) -> LockProxy:
        """Wrap a lock/condition without attaching it to an owner."""
        if isinstance(lock, LockProxy):
            return lock
        return LockProxy(lock, name, self)

    def instrument(self, owner: Any, *attrs: str) -> None:
        """Replace ``owner.<attr>`` locks with recording proxies.

        Proxy names are ``ClassName.attr`` so dynamic findings line up
        with the static CL004 node naming.
        """
        for attr in attrs:
            lock = getattr(owner, attr)
            if isinstance(lock, LockProxy):
                continue
            name = f"{type(owner).__name__}.{attr}"
            self._patch(owner, attr, LockProxy(lock, name, self))

    def instrument_app(self, app: Any) -> None:
        """Instrument a :class:`repro.serve.ServeApp` end to end.

        Duck-typed on purpose (no serve import): proxies every lock in the
        serving stack and hooks the generation observation points —
        ``CheckpointRegistry.install``/``current`` (bundle identity per
        generation) and ``SessionStore._sync`` (per-user adoption of a
        swapped generation, observed while the store lock is held).
        """
        registry = getattr(app, "registry", None)
        sessions = getattr(app, "sessions", None)
        batcher = getattr(app, "batcher", None)
        metrics = getattr(app, "metrics", None)
        if registry is not None:
            self.instrument(registry, "_lock")
            self._hook_registry(registry)
        if sessions is not None:
            self.instrument(sessions, "_lock")
            self._hook_sessions(sessions)
        if batcher is not None:
            self.instrument(batcher, "_nonempty")
        if metrics is not None:
            self.instrument(metrics, "_lock")
        if hasattr(app, "_pop_lock"):
            self.instrument(app, "_pop_lock")

    def observe_generation(self, name: str, generation: int,
                           fingerprint: Any = None) -> None:
        """Shadow-check one observation of a generation-counted artifact."""
        thread = threading.current_thread().name
        high = self._tls_dict("gen_high")
        last = high.get(name)
        if last is not None and generation < last:
            self._add_finding(ConcurrencyFinding(
                kind="torn-read",
                message=(f"generation of `{name}` moved backwards on one "
                         f"thread: {last} -> {generation}"),
                thread=thread, where=self._capture_stack()))
        high[name] = generation if last is None else max(last, generation)
        if fingerprint is None:
            return
        with self._lock:
            prev = self._gen_fingerprints.get((name, generation))
            if prev is None:
                self._gen_fingerprints[(name, generation)] = (
                    fingerprint, self._capture_stack(), thread)
                return
        if prev[0] != fingerprint:
            self._add_finding(ConcurrencyFinding(
                kind="torn-read",
                message=(f"`{name}` generation {generation} observed with "
                         f"two different artifact identities "
                         f"({prev[0]!r} vs {fingerprint!r}) — torn read "
                         f"across a swap"),
                thread=thread, where=self._capture_stack(), also=prev[1]))

    def restore(self) -> None:
        """Undo every instrumentation patch (LIFO)."""
        with self._lock:
            patches, self._patches = self._patches, []
        for owner, attr, original, had_attr in reversed(patches):
            if had_attr:
                setattr(owner, attr, original)
            else:
                # We shadowed a class-level method with an instance
                # attribute; removing it re-exposes the original.
                try:
                    delattr(owner, attr)
                except AttributeError:
                    pass

    # -- instrumentation plumbing ----------------------------------------
    def _patch(self, owner: Any, attr: str, replacement: Any) -> None:
        had_attr = attr in vars(owner)
        original = vars(owner).get(attr)
        setattr(owner, attr, replacement)
        with self._lock:
            self._patches.append((owner, attr, original, had_attr))

    def _hook_registry(self, registry: Any) -> None:
        orig_install = registry.install
        orig_current = registry.current
        san = self

        def install(model: Any, path: Optional[str] = None) -> Any:
            artifacts = orig_install(model, path=path)
            san.observe_generation("CheckpointRegistry",
                                   artifacts.generation, id(artifacts))
            return artifacts

        def current() -> Any:
            artifacts = orig_current()
            if artifacts is not None:
                san.observe_generation("CheckpointRegistry",
                                       artifacts.generation, id(artifacts))
            return artifacts

        self._patch(registry, "install", install)
        self._patch(registry, "current", current)

    def _hook_sessions(self, sessions: Any) -> None:
        orig_sync = sessions._sync
        san = self

        def _sync(session: Any, artifacts: Any) -> None:
            orig_sync(session, artifacts)
            if artifacts is not None:
                # Runs under the store lock, so the pair (user session,
                # adopted generation) is consistent by construction here;
                # the check catches torn adoption ordering per thread.
                san.observe_generation(
                    f"SessionStore.user[{session.user_id}]",
                    session.generation)

        self._patch(sessions, "_sync", _sync)

    # -- lock event handlers (called from LockProxy) ---------------------
    def _held_stack(self) -> List[_HeldLock]:
        held = getattr(self._tls, "held", None)
        if held is None:
            held = self._tls.held = []
        return held

    def _tls_dict(self, name: str) -> Dict[str, int]:
        value = getattr(self._tls, name, None)
        if value is None:
            value = {}
            setattr(self._tls, name, value)
        return value

    def _capture_stack(self) -> str:
        frames = traceback.extract_stack()
        frames = [f for f in frames
                  if not f.filename.endswith("concurrency.py")]
        return "".join(traceback.format_list(frames[-self.stack_depth:]))

    def _on_acquired(self, proxy: LockProxy,
                     reacquired: bool = False) -> None:
        held = self._held_stack()
        for entry in held:
            if entry.proxy is proxy and not reacquired:
                # RLock re-entry by the same thread: no new edge, and the
                # hold clock keeps running from the outermost acquire.
                entry.depth += 1
                return
        stack = self._capture_stack()
        for entry in held:
            if entry.proxy is not proxy:
                self._record_edge(entry.proxy.name, proxy.name, stack)
        held.append(_HeldLock(proxy, time.monotonic(), stack))

    def _on_released(self, proxy: LockProxy, waiting: bool = False) -> None:
        held = self._held_stack()
        for index in range(len(held) - 1, -1, -1):
            entry = held[index]
            if entry.proxy is not proxy:
                continue
            if entry.depth > 1 and not waiting:
                entry.depth -= 1
                return
            held.pop(index)
            held_ms = (time.monotonic() - entry.since) * 1000.0
            if held_ms > self.long_hold_ms:
                self._add_finding(ConcurrencyFinding(
                    kind="long-hold",
                    message=(f"`{proxy.name}` held for {held_ms:.1f} ms "
                             f"(threshold {self.long_hold_ms:g} ms)"),
                    thread=threading.current_thread().name,
                    where=entry.stack))
            return

    def _record_edge(self, outer: str, inner: str, stack: str) -> None:
        thread = threading.current_thread().name
        with self._lock:
            if inner in self._graph.get(outer, ()):
                return
            path = self._find_path(inner, outer)
            self._graph.setdefault(outer, set()).add(inner)
            self._edge_sites[(outer, inner)] = (stack, thread)
            if path is None:
                return
            pair = frozenset((outer, inner))
            if pair in self._reported_pairs:
                return
            self._reported_pairs.add(pair)
            reverse_site = self._edge_sites.get((path[0], path[1]))
            cycle = " -> ".join([outer, inner] + path[1:])
            self._findings.append(ConcurrencyFinding(
                kind="lock-inversion",
                message=(f"`{inner}` acquired while holding `{outer}`, but "
                         f"another path acquires them in the opposite "
                         f"order (cycle: {cycle})"),
                thread=thread, where=stack,
                also=reverse_site[0] if reverse_site else None))

    def _find_path(self, start: str, goal: str) -> Optional[List[str]]:
        """DFS path ``start → ... → goal`` in the current order graph."""
        stack = [(start, [start])]
        seen: Set[str] = set()
        while stack:
            node, path = stack.pop()
            if node == goal:
                return path
            if node in seen:
                continue
            seen.add(node)
            for succ in sorted(self._graph.get(node, ())):
                stack.append((succ, path + [succ]))
        return None

    def _add_finding(self, finding: ConcurrencyFinding) -> None:
        with self._lock:
            self._findings.append(finding)


@contextlib.contextmanager
def threadsan(long_hold_ms: float = DEFAULT_LONG_HOLD_MS,
              stack_depth: int = DEFAULT_STACK_DEPTH
              ) -> Iterator[ThreadSanitizer]:
    """Scoped runtime thread sanitizer; uninstalls all proxies on exit.

    Join any worker threads that may hold instrumented locks before the
    block exits — restore swaps the original primitives back in place.
    """
    sanitizer = ThreadSanitizer(long_hold_ms=long_hold_ms,
                                stack_depth=stack_depth)
    try:
        yield sanitizer
    finally:
        sanitizer.restore()
