"""`repro.analysis` — correctness tooling for the autograd substrate.

Three halves (see ``docs/ANALYSIS.md``):

**gradlint / racelint** — an AST-based static lint suite with
autograd-specific rules (GL family: missing ``_unbroadcast`` in backward
closures, graph-bypassing numpy math on ``Tensor.data``, unsanctioned
in-place mutation, legacy ``np.random`` global-state calls, swallowed
exceptions, ``__all__`` drift) and concurrency rules (CL family: unguarded
shared-state mutation, bare acquire/release, blocking calls under a lock,
static lock-order inversions, undeclared thread lifecycle).  Run it as
``python -m repro.analysis src``; restrict to one family with
``--rules CL``; suppress individual findings with
``# gradlint: disable=RULE — justification``.

**gradient sanitizer** — an opt-in runtime anomaly mode à la
``torch.autograd.set_detect_anomaly`` that attributes NaN/Inf forward
values and gradients to the op that created the offending node and
enforces the gradient shape contract.  Enable with
:func:`detect_anomaly` / :func:`set_detect_anomaly`, or pass
``--detect-anomaly`` to the training CLI.

**thread sanitizer** — an opt-in runtime lock instrumentation layer that
detects lock-order inversions, long holds, and torn reads of
generation-counted serving artifacts, attributing each finding to the
recorded acquisition stacks.  Enable with :func:`threadsan`, or pass
``--thread-sanitizer`` to the serve CLI.
"""

from .concurrency import (ConcurrencyFinding, LockProxy, ThreadSanitizer,
                          threadsan)
from .engine import LintEngine, discover_files, lint_paths
from .report import Finding, Report, rule_family
from .rules import all_rules
from .sanitizer import (GradientAnomalyError, GradientSanitizer,
                        anomaly_mode_enabled, detect_anomaly,
                        set_detect_anomaly)

__all__ = [
    "LintEngine", "lint_paths", "discover_files",
    "Finding", "Report", "rule_family", "all_rules",
    "GradientSanitizer", "GradientAnomalyError",
    "detect_anomaly", "set_detect_anomaly", "anomaly_mode_enabled",
    "ThreadSanitizer", "ConcurrencyFinding", "LockProxy", "threadsan",
]
