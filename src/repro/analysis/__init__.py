"""`repro.analysis` — correctness tooling for the autograd substrate.

Two halves (see ``docs/ANALYSIS.md``):

**gradlint** — an AST-based static lint suite with autograd-specific rules
(missing ``_unbroadcast`` in backward closures, graph-bypassing numpy math
on ``Tensor.data``, unsanctioned in-place mutation, legacy ``np.random``
global-state calls, swallowed exceptions, ``__all__`` drift).  Run it as
``python -m repro.analysis src``; suppress individual findings with
``# gradlint: disable=RULE — justification``.

**gradient sanitizer** — an opt-in runtime anomaly mode à la
``torch.autograd.set_detect_anomaly`` that attributes NaN/Inf forward
values and gradients to the op that created the offending node and
enforces the gradient shape contract.  Enable with
:func:`detect_anomaly` / :func:`set_detect_anomaly`, or pass
``--detect-anomaly`` to the training CLI.
"""

from .engine import LintEngine, discover_files, lint_paths
from .report import Finding, Report
from .rules import all_rules
from .sanitizer import (GradientAnomalyError, GradientSanitizer,
                        anomaly_mode_enabled, detect_anomaly,
                        set_detect_anomaly)

__all__ = [
    "LintEngine", "lint_paths", "discover_files",
    "Finding", "Report", "all_rules",
    "GradientSanitizer", "GradientAnomalyError",
    "detect_anomaly", "set_detect_anomaly", "anomaly_mode_enabled",
]
