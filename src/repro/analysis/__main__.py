"""``python -m repro.analysis`` entry point — see :mod:`repro.analysis.cli`."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
