"""Command-line interface for the analysis subsystem.

Usage::

    python -m repro.analysis src                 # lint, human output
    python -m repro.analysis src examples        # several roots
    python -m repro.analysis src --format json   # machine-readable
    python -m repro.analysis --list-rules        # rule catalogue
    python -m repro.analysis src --select GL004  # only some rules
    python -m repro.analysis src --ignore GL006
    python -m repro.analysis src --rules CL      # one rule family (racelint)

Exit status: 0 when no unsuppressed finding remains, 1 otherwise — wire it
as a blocking CI step next to the test suite.
"""

from __future__ import annotations

import argparse
import os
from typing import List, Optional

from .engine import LintEngine
from .rules import all_rules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description="gradlint — autograd-aware static analysis for the "
                    "repro codebase.")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format")
    parser.add_argument("--select", nargs="+", metavar="RULE", default=None,
                        help="run only these rule ids (e.g. GL001 GL004)")
    parser.add_argument("--ignore", nargs="+", metavar="RULE", default=None,
                        help="skip these rule ids")
    parser.add_argument("--rules", nargs="+", metavar="FAMILY", default=None,
                        help="run only rule families with these id prefixes "
                             "(e.g. CL for racelint, GL for gradlint)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def format_rule_catalogue() -> str:
    lines = ["gradlint rule catalogue", ""]
    for rule in all_rules():
        lines.append(f"  {rule.id}  {rule.name:<22} [{rule.severity}]")
        lines.append(f"         {rule.description}")
    lines.append("")
    lines.append("Suppress one line:  # gradlint: disable=GL002 — why it is safe")
    lines.append("Suppress a file:    # gradlint: disable-file=GL006 — why")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(format_rule_catalogue())
        return 0
    engine = LintEngine(select=args.select, ignore=args.ignore,
                        families=args.rules)
    if not engine.rules:
        print("gradlint: no rules selected")
        return 2
    missing = [path for path in args.paths if not os.path.exists(path)]
    if missing:
        # A typo'd path must not read as a clean CI run.
        print("gradlint: no such file or directory: " + ", ".join(missing))
        return 2
    report = engine.run_paths(args.paths)
    if args.format == "json":
        print(report.render_json())
    else:
        print(report.render_text())
    return report.exit_code
