"""The gradlint engine: file discovery, single-pass AST dispatch, suppression.

Suppression syntax (checked against the *reported line* of a finding)::

    risky_call()  # gradlint: disable=GL002 — detached shift cancels in grad
    other_call()  # gradlint: disable=GL002,GL004
    anything()    # gradlint: disable

a preceding-line variant for statements too long to carry a trailing
comment::

    # gradlint: disable-next=GL002 — detached shift cancels in grad
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))

and, anywhere in a file, a file-scoped variant::

    # gradlint: disable-file=GL006 — generated module

A bare ``disable`` (no ``=``) suppresses every rule on that line; the
``disable-file`` form without ids suppresses the whole file.  Text after
the rule ids (a justification) is encouraged and ignored by the parser.
"""

from __future__ import annotations

import ast
import os
import re
from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .report import Finding, Report
from .rules import LintContext, Rule, all_rules

_SUPPRESS_RE = re.compile(
    r"#\s*gradlint:\s*(disable(?:-file|-next)?)\s*"
    r"(?:=\s*([A-Za-z0-9_,\s]+?))?\s*(?:[—#-]|$)")

#: Sentinel meaning "every rule" in a suppression set.
_ALL = "*"


def _next_code_line(lines: Sequence[str], lineno: int) -> int:
    """First line after ``lineno`` that is not blank or comment-only.

    Lets a ``disable-next`` justification span several comment lines before
    the statement it suppresses.
    """
    for offset, line in enumerate(lines[lineno:], start=lineno + 1):
        stripped = line.strip()
        if stripped and not stripped.startswith("#"):
            return offset
    return lineno + 1


def _parse_suppressions(lines: Sequence[str]) -> Tuple[Set[str], Dict[int, Set[str]]]:
    """Extract (file-level ids, per-line ids) from ``# gradlint:`` comments."""
    file_level: Set[str] = set()
    per_line: Dict[int, Set[str]] = defaultdict(set)
    for lineno, line in enumerate(lines, start=1):
        if "gradlint" not in line:
            continue
        match = _SUPPRESS_RE.search(line)
        if not match:
            continue
        directive, ids_text = match.group(1), match.group(2)
        ids = ({_ALL} if not ids_text else
               {part.strip().upper() for part in ids_text.split(",")
                if part.strip()})
        if directive == "disable-file":
            file_level |= ids
        elif directive == "disable-next":
            per_line[_next_code_line(lines, lineno)] |= ids
        else:
            per_line[lineno] |= ids
    return file_level, dict(per_line)


def _is_suppressed(finding: Finding, file_level: Set[str],
                   per_line: Dict[int, Set[str]]) -> bool:
    if _ALL in file_level or finding.rule_id in file_level:
        return True
    ids = per_line.get(finding.line)
    return bool(ids) and (_ALL in ids or finding.rule_id in ids)


def discover_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            found.append(path)
            continue
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(d for d in dirs
                             if not d.startswith(".") and d != "__pycache__")
            for name in sorted(files):
                if name.endswith(".py"):
                    found.append(os.path.join(root, name))
    return sorted(set(found))


class LintEngine:
    """Runs a set of rules over source files with one AST walk per file."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None,
                 select: Optional[Iterable[str]] = None,
                 ignore: Optional[Iterable[str]] = None,
                 families: Optional[Iterable[str]] = None) -> None:
        rules = list(rules) if rules is not None else all_rules()
        if families is not None:
            prefixes = tuple(f.upper() for f in families)
            rules = [r for r in rules if r.id.startswith(prefixes)]
        if select is not None:
            wanted = {r.upper() for r in select}
            rules = [r for r in rules if r.id in wanted]
        if ignore is not None:
            dropped = {r.upper() for r in ignore}
            rules = [r for r in rules if r.id not in dropped]
        self.rules: List[Rule] = rules

    # ------------------------------------------------------------------
    def run_paths(self, paths: Iterable[str]) -> Report:
        report = Report()
        for path in discover_files(paths):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    source = handle.read()
            except OSError as exc:
                report.findings.append(Finding(
                    path=path, line=1, col=1, rule_id="GL000",
                    severity="error", message=f"cannot read file: {exc}"))
                continue
            report.files_checked += 1
            findings, suppressed = self.run_source(source, path)
            report.extend(findings)
            report.suppressed += suppressed
        return report

    def run_source(self, source: str, path: str = "<string>"
                   ) -> Tuple[List[Finding], int]:
        """Lint one source blob; returns (active findings, suppressed count)."""
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            return [Finding(path=path, line=exc.lineno or 1,
                            col=(exc.offset or 0) + 1, rule_id="GL000",
                            severity="error",
                            message=f"syntax error: {exc.msg}")], 0

        ctx = LintContext(path=path, tree=tree, source=source)
        active_rules = [rule for rule in self.rules if rule.applies_to(ctx)]
        if not active_rules:
            return [], 0

        raw: List[Finding] = []
        for rule in active_rules:
            raw.extend(rule.check_module(ctx))
        dispatch: Dict[type, List[Rule]] = defaultdict(list)
        for rule in active_rules:
            for node_type in rule.node_types:
                dispatch[node_type].append(rule)
        if dispatch:
            for node in ast.walk(tree):
                for rule in dispatch.get(type(node), ()):
                    raw.extend(rule.check_node(node, ctx))

        file_level, per_line = _parse_suppressions(ctx.lines)
        findings = [f for f in raw
                    if not _is_suppressed(f, file_level, per_line)]
        return findings, len(raw) - len(findings)


def lint_paths(paths: Iterable[str], **engine_kwargs) -> Report:
    """One-call façade: lint ``paths`` with the default rule set."""
    return LintEngine(**engine_kwargs).run_paths(paths)
