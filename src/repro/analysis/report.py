"""Finding/report types shared by the gradlint engine and its CLI.

A :class:`Finding` is one diagnostic anchored to a file location; a
:class:`Report` aggregates the findings of a lint run together with the
bookkeeping the CLI needs (files checked, suppression counts) and renders
either human-readable text or machine-readable JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

SEVERITIES = ("error", "warning")

#: JSON report schema identifier.  v2 added the per-finding ``family``
#: field and the top-level per-family counts alongside the CL rule family.
JSON_SCHEMA = "repro.analysis/v2"


def rule_family(rule_id: str) -> str:
    """Alphabetic prefix of a rule id: ``GL001 -> GL``, ``CL004 -> CL``."""
    return rule_id.rstrip("0123456789")


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic emitted by a lint rule."""

    path: str
    line: int
    col: int
    rule_id: str
    severity: str
    message: str

    @property
    def family(self) -> str:
        return rule_family(self.rule_id)

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule_id} [{self.severity}] {self.message}")

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "family": self.family,
            "severity": self.severity,
            "message": self.message,
        }


@dataclass
class Report:
    """Aggregated outcome of linting a set of files."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0

    def extend(self, findings: Sequence[Finding]) -> None:
        self.findings.extend(findings)

    def count(self, severity: str) -> int:
        return sum(1 for f in self.findings if f.severity == severity)

    @property
    def exit_code(self) -> int:
        """Non-zero whenever any unsuppressed finding remains.

        Both severities gate: the suite is meant to run as a blocking CI
        step, and a warning that is knowingly acceptable should carry an
        inline ``# gradlint: disable=<RULE>`` with a justification instead
        of being waved through globally.
        """
        return 1 if self.findings else 0

    def render_text(self) -> str:
        lines = [f.render() for f in sorted(self.findings)]
        errors, warnings = self.count("error"), self.count("warning")
        summary = (f"gradlint: {self.files_checked} file(s) checked, "
                   f"{errors} error(s), {warnings} warning(s), "
                   f"{self.suppressed} suppressed")
        if not self.findings:
            return summary + " — clean"
        return "\n".join(lines + ["", summary])

    def families(self) -> Dict[str, int]:
        """Finding counts per rule family (``{"GL": 3, "CL": 1}``)."""
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.family] = counts.get(finding.family, 0) + 1
        return dict(sorted(counts.items()))

    def render_json(self) -> str:
        payload = {
            "schema": JSON_SCHEMA,
            "files_checked": self.files_checked,
            "errors": self.count("error"),
            "warnings": self.count("warning"),
            "suppressed": self.suppressed,
            "families": self.families(),
            "findings": [f.to_dict() for f in sorted(self.findings)],
        }
        return json.dumps(payload, indent=2)
