"""Runtime gradient sanitizer — an opt-in anomaly mode for the autograd engine.

Analogous to ``torch.autograd.set_detect_anomaly``: when enabled, every
graph node records the op that created it plus a short creation traceback,
and the engine's hook points (see :mod:`repro.nn.tensor`) let the sanitizer

* reject non-finite values the moment an op produces them in the forward
  pass,
* re-scan the whole graph at ``backward()`` time, so a tensor *poisoned
  after creation* (e.g. an in-place write) is still attributed to its
  creating op,
* validate the gradient shape contract — after un-broadcasting, the
  gradient accumulated into a tensor must match the tensor's own shape,
* flag NaN/Inf gradients as they are accumulated, naming the op whose
  backward closure produced them.

The mode costs one ``np.isfinite`` sweep per op and is strictly opt-in;
with anomaly mode off the engine pays a single ``is None`` check per hook.

Usage::

    from repro.analysis import detect_anomaly, set_detect_anomaly

    with detect_anomaly():          # scoped
        loss = model.training_loss(batch)
        loss.backward()

    set_detect_anomaly(True)        # process-wide, e.g. from --detect-anomaly
"""

from __future__ import annotations

import contextlib
import sys
import traceback
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from ..nn import tensor as tensor_mod
from ..nn.sparse import RowSparseGrad
from ..nn.tensor import Tensor


class GradientAnomalyError(RuntimeError):
    """Raised by the sanitizer when the autograd graph misbehaves.

    Attributes
    ----------
    kind:
        ``"forward"`` (non-finite op output), ``"poisoned"`` (non-finite
        value found during the pre-backward graph scan), ``"gradient"``
        (non-finite accumulated gradient) or ``"shape"`` (gradient/tensor
        shape contract violation).
    op:
        Name of the creating op of the offending node, when known.
    where:
        Formatted creation traceback of the offending node, when recorded.
    """

    def __init__(self, message: str, kind: str, op: Optional[str] = None,
                 where: Optional[str] = None) -> None:
        details = [message]
        if where:
            details.append("Node created at (most recent call last):\n" + where)
        super().__init__("\n".join(details))
        self.kind = kind
        self.op = op
        self.where = where


def _describe(data: np.ndarray) -> str:
    data = np.asarray(data)
    nan = int(np.isnan(data).sum())
    inf = int(np.isinf(data).sum())
    return (f"shape {data.shape}: {nan} NaN / {inf} Inf "
            f"of {data.size} element(s)")


class GradientSanitizer:
    """Observer plugged into :mod:`repro.nn.tensor`'s hook points."""

    def __init__(self, stack_depth: int = 6) -> None:
        self.stack_depth = stack_depth
        self._current: Optional[Tensor] = None

    # -- helpers --------------------------------------------------------
    def _node_meta(self, node: Optional[Tensor]) -> Tuple[str, Optional[str]]:
        meta = getattr(node, "_op_meta", None) if node is not None else None
        if meta is None:
            return "<unknown op>", None
        return meta

    # -- hook points (called by repro.nn.tensor) ------------------------
    def on_create(self, out: Tensor, parents: Sequence[Tensor]) -> None:
        """Record provenance for ``out`` and reject non-finite op outputs."""
        # Frame 0 is this method, 1 is Tensor._make, 2 is the op itself
        # (Tensor.__add__, concat, ...).
        frame = sys._getframe(2)
        op = frame.f_code.co_name
        where = "".join(traceback.format_list(
            traceback.extract_stack(frame, limit=self.stack_depth)))
        out._op_meta = (op, where)
        if not np.all(np.isfinite(out.data)):
            raise GradientAnomalyError(
                f"op `{op}` produced a non-finite forward value "
                f"({_describe(out.data)})", kind="forward", op=op, where=where)

    def on_backward_start(self, root: Tensor,
                          topo: Sequence[Tensor]) -> None:
        """Scan every node's forward value before gradients start flowing."""
        for node in topo:
            if not np.all(np.isfinite(node.data)):
                op, where = self._node_meta(node)
                raise GradientAnomalyError(
                    f"non-finite forward value detected in the graph at "
                    f"backward() time ({_describe(node.data)}); the "
                    f"offending node was created by op `{op}`",
                    kind="poisoned", op=op, where=where)

    def on_node_backward(self, node: Tensor) -> None:
        self._current = node

    def on_backward_end(self, root: Tensor) -> None:
        self._current = None

    def on_accumulate(self, target: Tensor, grad: np.ndarray) -> None:
        """Shape contract + finiteness of every accumulated gradient."""
        op, where = self._node_meta(self._current)
        if isinstance(grad, RowSparseGrad):
            self._check_row_sparse(target, grad, op, where)
            return
        grad = np.asarray(grad)
        if grad.shape != target.data.shape:
            raise GradientAnomalyError(
                f"gradient shape contract violated: backward of op `{op}` "
                f"accumulated a gradient of shape {grad.shape} into a "
                f"tensor of shape {target.data.shape} (missing "
                f"`_unbroadcast`?)", kind="shape", op=op, where=where)
        if not np.all(np.isfinite(grad)):
            raise GradientAnomalyError(
                f"backward of op `{op}` produced a non-finite gradient "
                f"({_describe(grad)})", kind="gradient", op=op, where=where)

    def _check_row_sparse(self, target: Tensor, grad: RowSparseGrad,
                          op: Optional[str], where: Optional[str]) -> None:
        """Contract checks for a row-sparse gradient, attributing offending
        rows (not just "somewhere in a (V, d) table") to the creating op."""
        if grad.shape != target.data.shape:
            raise GradientAnomalyError(
                f"gradient shape contract violated: backward of op `{op}` "
                f"accumulated a row-sparse gradient representing shape "
                f"{grad.shape} into a tensor of shape {target.data.shape}",
                kind="shape", op=op, where=where)
        rows = target.data.shape[0] if target.data.ndim else 0
        if grad.indices.size and (int(grad.indices.min()) < 0
                                  or int(grad.indices.max()) >= rows):
            raise GradientAnomalyError(
                f"row-sparse gradient from op `{op}` carries out-of-range "
                f"row indices (min {int(grad.indices.min())}, max "
                f"{int(grad.indices.max())}) for a table of {rows} rows",
                kind="shape", op=op, where=where)
        finite = np.isfinite(grad.values)
        if not finite.all():
            row_ok = finite.reshape(finite.shape[0], -1).all(axis=1)
            bad = grad.indices[~row_ok]
            shown = ", ".join(str(int(r)) for r in bad[:8])
            suffix = ", ..." if bad.size > 8 else ""
            raise GradientAnomalyError(
                f"backward of op `{op}` produced a non-finite row-sparse "
                f"gradient ({_describe(grad.values)}) in row(s) "
                f"[{shown}{suffix}]", kind="gradient", op=op, where=where)


# ----------------------------------------------------------------------
# Mode management
# ----------------------------------------------------------------------
def set_detect_anomaly(enabled: bool = True,
                       stack_depth: int = 6) -> Optional[object]:
    """Enable/disable anomaly mode process-wide; returns the prior observer."""
    observer = GradientSanitizer(stack_depth=stack_depth) if enabled else None
    return tensor_mod.set_graph_observer(observer)


def anomaly_mode_enabled() -> bool:
    return isinstance(tensor_mod.graph_observer(), GradientSanitizer)


@contextlib.contextmanager
def detect_anomaly(stack_depth: int = 6) -> Iterator[GradientSanitizer]:
    """Scoped anomaly mode; restores the previous observer on exit."""
    sanitizer = GradientSanitizer(stack_depth=stack_depth)
    previous = tensor_mod.set_graph_observer(sanitizer)
    try:
        yield sanitizer
    finally:
        tensor_mod.set_graph_observer(previous)
