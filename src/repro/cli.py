"""Command-line interface: regenerate any paper table/figure.

Usage::

    python -m repro table2
    python -m repro table4 --scale 0.05 --epochs 12 --workers 4
    python -m repro fig5 --datasets baby --cells gru
    python -m repro grid --datasets baby --grid-param epsilon=0.2,0.3
    python -m repro efficiency --quick

Each subcommand prints the same rows/series layout the paper reports.
``--workers N`` fans the embarrassingly-parallel commands (``table4``,
``grid``) out across processes via :mod:`repro.parallel`; the default is
CPU-count aware (capped), ``0``/``1`` force serial, and results are
bit-identical at any worker count.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from .causal import run_identifiability_study
from .exp import (BenchmarkSettings, efficiency_study,
                  figure3_sequence_lengths, figure4_cluster_sweep,
                  figure5_epsilon_sweep, figure6_temperature_sweep,
                  figure7_explanation, figure8_case_studies,
                  grid_search_causer, render_table, table2_statistics,
                  table4_overall, table5_ablation)

EXPERIMENTS = ("table2", "fig3", "table4", "fig4", "fig5", "fig6", "table5",
               "fig7", "fig8", "efficiency", "identifiability", "grid")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce tables/figures from the Causer paper "
                    "(ICDE 2023) on scaled synthetic profiles.")
    parser.add_argument("experiment", choices=EXPERIMENTS,
                        help="which table/figure to regenerate")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="dataset scale relative to Table II sizes")
    parser.add_argument("--epochs", type=int, default=12,
                        help="training epochs per model")
    parser.add_argument("--seed", type=int, default=1,
                        help="data-generation seed")
    parser.add_argument("--quick", action="store_true",
                        help="2-epoch smoke mode")
    parser.add_argument("--datasets", nargs="+", default=None,
                        help="restrict sweep/ablation datasets")
    parser.add_argument("--cells", nargs="+", default=None,
                        choices=["gru", "lstm"],
                        help="restrict sequential backbones")
    parser.add_argument("--workers", type=int, default=None,
                        help="process count for the parallel commands "
                             "(table4, grid); default: CPU-count aware "
                             "capped at 8, 0/1 = serial")
    parser.add_argument("--grid-param", action="append", default=None,
                        metavar="KEY=V1,V2,...",
                        help="(grid) one hyper-parameter and its candidate "
                             "values, repeatable; e.g. "
                             "--grid-param epsilon=0.2,0.3")
    parser.add_argument("--grid-metric", default="ndcg",
                        help="(grid) validation metric to maximise")
    parser.add_argument("--detect-anomaly", action="store_true",
                        help="run with the autograd anomaly sanitizer: "
                             "NaN/Inf forward values and gradients abort "
                             "with the creating op and its traceback "
                             "(see repro.analysis)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    settings = BenchmarkSettings(scale=args.scale, num_epochs=args.epochs,
                                 data_seed=args.seed, quick=args.quick)
    sweep_kwargs = {}
    if args.datasets:
        sweep_kwargs["datasets"] = tuple(args.datasets)
    if args.cells:
        sweep_kwargs["cells"] = tuple(args.cells)

    if args.detect_anomaly:
        from .analysis import detect_anomaly
        with detect_anomaly():
            return _dispatch(args, settings, sweep_kwargs)
    return _dispatch(args, settings, sweep_kwargs)


def _dispatch(args: argparse.Namespace, settings: "BenchmarkSettings",
              sweep_kwargs: dict) -> int:
    if args.experiment == "table2":
        print(table2_statistics(settings).render())
    elif args.experiment == "fig3":
        print(figure3_sequence_lengths(settings).render())
    elif args.experiment == "table4":
        kwargs = {}
        if args.datasets:
            kwargs["datasets"] = tuple(args.datasets)
        print(table4_overall(settings, workers=args.workers,
                             **kwargs).render())
    elif args.experiment == "grid":
        return _run_grid(args, settings)
    elif args.experiment == "fig4":
        print(figure4_cluster_sweep(settings, **sweep_kwargs).render())
    elif args.experiment == "fig5":
        print(figure5_epsilon_sweep(settings, **sweep_kwargs).render())
    elif args.experiment == "fig6":
        print(figure6_temperature_sweep(settings, **sweep_kwargs).render())
    elif args.experiment == "table5":
        kwargs = dict(sweep_kwargs)
        print(table5_ablation(settings, **kwargs).render())
    elif args.experiment == "fig7":
        kwargs = {}
        if args.cells:
            kwargs["cells"] = tuple(args.cells)
        print(figure7_explanation(settings, **kwargs).render())
    elif args.experiment == "fig8":
        print(figure8_case_studies(settings).render())
    elif args.experiment == "efficiency":
        print(efficiency_study(settings).render())
    elif args.experiment == "identifiability":
        reports = run_identifiability_study()
        rows = [(r.num_samples, r.mec_recovery_rate, r.mean_shd,
                 r.mean_skeleton_f1) for r in reports]
        print(render_table(("samples", "MEC recovery", "mean SHD",
                            "skeleton F1"), rows,
                           title="Theorem 1 — identifiability"))
    return 0


def _parse_grid_value(raw: str):
    """``"0.3"`` → float, ``"16"`` → int, anything else stays a string."""
    try:
        return int(raw)
    except ValueError:
        try:
            return float(raw)
        except ValueError:
            return raw


def parse_grid_params(entries: Optional[List[str]]) -> Dict[str, list]:
    """Turn repeated ``KEY=V1,V2,...`` flags into a parameter grid."""
    if not entries:
        raise SystemExit("error: grid needs at least one "
                         "--grid-param KEY=V1,V2,...")
    grid: Dict[str, list] = {}
    for entry in entries:
        key, sep, values = entry.partition("=")
        if not sep or not key or not values:
            raise SystemExit(f"error: malformed --grid-param {entry!r}; "
                             f"expected KEY=V1,V2,...")
        grid[key] = [_parse_grid_value(v) for v in values.split(",") if v]
        if not grid[key]:
            raise SystemExit(f"error: --grid-param {entry!r} lists no values")
    return grid


def _run_grid(args: argparse.Namespace, settings: BenchmarkSettings) -> int:
    from .data import load_dataset
    grid = parse_grid_params(args.grid_param)
    dataset_name = (args.datasets or ["baby"])[0]
    dataset = load_dataset(dataset_name, scale=settings.scale,
                           seed=settings.data_seed)
    result = grid_search_causer(dataset, grid, settings,
                                metric=args.grid_metric,
                                workers=args.workers)
    rows = [(", ".join(f"{k}={v}" for k, v in overrides.items()), score)
            for overrides, score in result.top(10)]
    print(render_table(("configuration", f"{args.grid_metric}@{settings.z} (%)"),
                       rows,
                       title=f"Table III grid search — {dataset_name}"))
    best_overrides, best_score = result.best
    print(f"best: {best_overrides} -> {best_score:.3f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
