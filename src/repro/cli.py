"""Command-line interface: regenerate any paper table/figure.

Usage::

    python -m repro table2
    python -m repro table4 --scale 0.05 --epochs 12 --workers 4
    python -m repro fig5 --datasets baby --cells gru
    python -m repro grid --datasets baby --grid-param epsilon=0.2,0.3
    python -m repro efficiency --quick
    python -m repro train --model "Causer (GRU)" --save-model causer.npz
    python -m repro train --model GRU4Rec --data-backend eventlog
    python -m repro eval --load-model causer.npz
    python -m repro serve --checkpoint causer.npz --port 8080

Each subcommand prints the same rows/series layout the paper reports.
``--workers N`` fans the embarrassingly-parallel commands (``table4``,
``grid``) out across processes via :mod:`repro.parallel`; the default is
CPU-count aware (capped), ``0``/``1`` force serial, and results are
bit-identical at any worker count.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from .causal import run_identifiability_study
from .exp import (BenchmarkSettings, efficiency_study,
                  figure3_sequence_lengths, figure4_cluster_sweep,
                  figure5_epsilon_sweep, figure6_temperature_sweep,
                  figure7_explanation, figure8_case_studies,
                  grid_search_causer, render_table, table2_statistics,
                  table4_overall, table5_ablation)

EXPERIMENTS = ("table2", "fig3", "table4", "fig4", "fig5", "fig6", "table5",
               "fig7", "fig8", "efficiency", "identifiability", "grid",
               "train", "eval", "serve")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce tables/figures from the Causer paper "
                    "(ICDE 2023) on scaled synthetic profiles.")
    parser.add_argument("experiment", choices=EXPERIMENTS,
                        help="which table/figure to regenerate")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="dataset scale relative to Table II sizes")
    parser.add_argument("--epochs", type=int, default=12,
                        help="training epochs per model")
    parser.add_argument("--seed", type=int, default=1,
                        help="data-generation seed")
    parser.add_argument("--quick", action="store_true",
                        help="2-epoch smoke mode")
    parser.add_argument("--data-backend", choices=["memory", "eventlog"],
                        default="memory",
                        help="(train, eval) dataset substrate: 'memory' "
                             "materialises Python basket tuples (default), "
                             "'eventlog' streams batches straight from the "
                             "memmapped columnar store in repro.data.eventlog "
                             "with bounded resident memory (see docs/DATA.md); "
                             "both backends yield bit-identical batches and "
                             "loss trajectories for the same seed")
    parser.add_argument("--eventlog-dir", metavar="DIR", default=None,
                        help="(--data-backend eventlog) cache directory for "
                             "generated event logs; default ./eventlogs.  An "
                             "existing log for the same "
                             "dataset/scale/seed is reused, not regenerated")
    parser.add_argument("--datasets", nargs="+", default=None,
                        help="restrict sweep/ablation datasets")
    parser.add_argument("--cells", nargs="+", default=None,
                        choices=["gru", "lstm"],
                        help="restrict sequential backbones")
    parser.add_argument("--workers", type=int, default=None,
                        help="process count for the parallel commands "
                             "(table4, grid); default: CPU-count aware "
                             "capped at 8, 0/1 = serial.  For `serve`, "
                             "N > 1 starts the sharded multi-process "
                             "cluster (repro.serve.mp): sessions are "
                             "partitioned by user-id hash across N "
                             "workers attached to one shared-memory "
                             "checkpoint")
    parser.add_argument("--grid-param", action="append", default=None,
                        metavar="KEY=V1,V2,...",
                        help="(grid) one hyper-parameter and its candidate "
                             "values, repeatable; e.g. "
                             "--grid-param epsilon=0.2,0.3")
    parser.add_argument("--grid-metric", default="ndcg",
                        help="(grid) validation metric to maximise")
    parser.add_argument("--model", default="Causer (GRU)",
                        help="(train) Table IV model name to train")
    parser.add_argument("--save-model", metavar="PATH", default=None,
                        help="(train) write the trained model to PATH as a "
                             ".npz checkpoint (repro.io.save_model)")
    parser.add_argument("--load-model", metavar="PATH", default=None,
                        help="(eval) evaluate a saved checkpoint instead of "
                             "training")
    parser.add_argument("--checkpoint", metavar="PATH", default=None,
                        help="(serve) checkpoint to serve; omit to start "
                             "degraded (popularity fallback) and hot-load "
                             "later")
    parser.add_argument("--host", default="127.0.0.1",
                        help="(serve) bind address")
    parser.add_argument("--port", type=int, default=8080,
                        help="(serve) bind port (0 = ephemeral)")
    parser.add_argument("--max-batch-size", type=int, default=32,
                        help="(serve) micro-batch size cap")
    parser.add_argument("--max-wait-ms", type=float, default=2.0,
                        help="(serve) max time a request waits to be "
                             "batched with others")
    parser.add_argument("--session-capacity", type=int, default=10_000,
                        help="(serve) LRU capacity of the session store")
    parser.add_argument("--retrieval", choices=["exact", "ivf"],
                        default=None,
                        help="(serve) candidate-generation mode: 'exact' "
                             "scores the full catalog through the model "
                             "head (and labels responses), 'ivf' cuts an "
                             "ANN shortlist with the two-tower IVF index "
                             "and re-ranks it through the exact causal "
                             "head (see docs/RETRIEVAL.md)")
    parser.add_argument("--shortlist", type=int, default=500,
                        help="(serve --retrieval ivf) candidate shortlist "
                             "size handed to the exact re-rank stage")
    parser.add_argument("--nprobe", type=int, default=8,
                        help="(serve --retrieval ivf) IVF cells probed per "
                             "query; higher = better recall, slower")
    parser.add_argument("--quantize", choices=["none", "fp16", "int8"],
                        default="none",
                        help="(serve) frozen embedding-table precision: "
                             "'none' keeps fp64 tables (byte-identical "
                             "scores), 'fp16' halves table memory "
                             "(top-z overlap >= 0.99), 'int8' quarters it "
                             "with per-row scale/offset (see "
                             "docs/SERVING.md for tolerances)")
    parser.add_argument("--online", action="store_true",
                        help="(serve) enable continual learning: tee "
                             "/v1/events into an append-only log, train a "
                             "shadow model in the background, and (with "
                             "--refresh-every) periodically re-derive the "
                             "causal artifacts and hot swap them in "
                             "(see docs/ONLINE.md); requires --checkpoint")
    parser.add_argument("--online-lr", type=float, default=0.01,
                        help="(serve --online) learning rate for the "
                             "shadow trainer's sparse embedding updates; "
                             "0 disables updates entirely (serving stays "
                             "bit-identical to the frozen checkpoint)")
    parser.add_argument("--online-optimizer", default="adagrad",
                        choices=["sgd", "adagrad", "adam", "sparseadam"],
                        help="(serve --online) optimizer for shadow updates")
    parser.add_argument("--online-batch-events", type=int, default=32,
                        help="(serve --online) events per training "
                             "micro-batch; batches are applied exactly "
                             "once at fixed log offsets")
    parser.add_argument("--refresh-every", type=float, default=0.0,
                        metavar="SECONDS",
                        help="(serve --online) re-derive causal artifacts "
                             "on a sliding window and hot swap them in "
                             "every SECONDS; 0 disables refresh")
    parser.add_argument("--window", type=int, default=2048,
                        help="(serve --online) sliding-window size (events) "
                             "each refresh re-derives from")
    parser.add_argument("--refresh-epochs", type=int, default=1,
                        help="(serve --online) warm-started Algorithm-1 "
                             "epochs per refresh")
    parser.add_argument("--event-log", metavar="DIR", default=None,
                        help="(serve --online) directory for the durable "
                             "replayable event log; omit for a memory-only "
                             "log (no offline replay)")
    parser.add_argument("--detect-anomaly", action="store_true",
                        help="run with the autograd anomaly sanitizer: "
                             "NaN/Inf forward values and gradients abort "
                             "with the creating op and its traceback "
                             "(see repro.analysis)")
    parser.add_argument("--thread-sanitizer", action="store_true",
                        help="(serve) run with the runtime thread sanitizer: "
                             "lock-order inversions, long holds, and torn "
                             "generation reads are reported with recorded "
                             "acquisition stacks on shutdown; exit 1 on any "
                             "finding (see repro.analysis.threadsan)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    settings = BenchmarkSettings(scale=args.scale, num_epochs=args.epochs,
                                 data_seed=args.seed, quick=args.quick)
    sweep_kwargs = {}
    if args.datasets:
        sweep_kwargs["datasets"] = tuple(args.datasets)
    if args.cells:
        sweep_kwargs["cells"] = tuple(args.cells)

    if args.detect_anomaly:
        from .analysis import detect_anomaly
        with detect_anomaly():
            return _dispatch(args, settings, sweep_kwargs)
    return _dispatch(args, settings, sweep_kwargs)


def _dispatch(args: argparse.Namespace, settings: "BenchmarkSettings",
              sweep_kwargs: dict) -> int:
    if args.experiment == "table2":
        print(table2_statistics(settings).render())
    elif args.experiment == "fig3":
        print(figure3_sequence_lengths(settings).render())
    elif args.experiment == "table4":
        kwargs = {}
        if args.datasets:
            kwargs["datasets"] = tuple(args.datasets)
        print(table4_overall(settings, workers=args.workers,
                             **kwargs).render())
    elif args.experiment == "grid":
        return _run_grid(args, settings)
    elif args.experiment == "fig4":
        print(figure4_cluster_sweep(settings, **sweep_kwargs).render())
    elif args.experiment == "fig5":
        print(figure5_epsilon_sweep(settings, **sweep_kwargs).render())
    elif args.experiment == "fig6":
        print(figure6_temperature_sweep(settings, **sweep_kwargs).render())
    elif args.experiment == "table5":
        kwargs = dict(sweep_kwargs)
        print(table5_ablation(settings, **kwargs).render())
    elif args.experiment == "fig7":
        kwargs = {}
        if args.cells:
            kwargs["cells"] = tuple(args.cells)
        print(figure7_explanation(settings, **kwargs).render())
    elif args.experiment == "fig8":
        print(figure8_case_studies(settings).render())
    elif args.experiment == "efficiency":
        print(efficiency_study(settings).render())
    elif args.experiment == "train":
        return _run_train(args, settings)
    elif args.experiment == "eval":
        return _run_eval(args, settings)
    elif args.experiment == "serve":
        return _run_serve(args)
    elif args.experiment == "identifiability":
        reports = run_identifiability_study()
        rows = [(r.num_samples, r.mec_recovery_rate, r.mean_shd,
                 r.mean_skeleton_f1) for r in reports]
        print(render_table(("samples", "MEC recovery", "mean SHD",
                            "skeleton F1"), rows,
                           title="Theorem 1 — identifiability"))
    return 0


def _parse_grid_value(raw: str):
    """``"0.3"`` → float, ``"16"`` → int, anything else stays a string."""
    try:
        return int(raw)
    except ValueError:
        try:
            return float(raw)
        except ValueError:
            return raw


def parse_grid_params(entries: Optional[List[str]]) -> Dict[str, list]:
    """Turn repeated ``KEY=V1,V2,...`` flags into a parameter grid."""
    if not entries:
        raise SystemExit("error: grid needs at least one "
                         "--grid-param KEY=V1,V2,...")
    grid: Dict[str, list] = {}
    for entry in entries:
        key, sep, values = entry.partition("=")
        if not sep or not key or not values:
            raise SystemExit(f"error: malformed --grid-param {entry!r}; "
                             f"expected KEY=V1,V2,...")
        grid[key] = [_parse_grid_value(v) for v in values.split(",") if v]
        if not grid[key]:
            raise SystemExit(f"error: --grid-param {entry!r} lists no values")
    return grid


def _dataset_and_split(args: argparse.Namespace,
                       settings: "BenchmarkSettings"):
    from .data.interactions import leave_one_out_split
    name = (args.datasets or ["baby"])[0]
    if getattr(args, "data_backend", "memory") == "eventlog":
        dataset = _eventlog_dataset(name, settings, args)
    else:
        from .data import load_dataset
        dataset = load_dataset(name, scale=settings.scale,
                               seed=settings.data_seed)
    return dataset, leave_one_out_split(dataset.corpus)


def _eventlog_dataset(name: str, settings: "BenchmarkSettings",
                      args: argparse.Namespace):
    """Load (or generate once and cache) the out-of-core event log.

    The cache key is (profile, scale, seed), so repeated train/eval runs
    over the same configuration reuse the shards on disk instead of
    re-simulating.  Generation is shard-parallel when ``--workers`` asks
    for it and bit-identical to serial either way.
    """
    from pathlib import Path

    from .data import dataset_config, generate_eventlog, load_eventlog_dataset
    root = Path(args.eventlog_dir) if args.eventlog_dir else Path("eventlogs")
    path = root / (f"{name.lower()}-scale{settings.scale:g}"
                   f"-seed{settings.data_seed}")
    if (path / "header.json").exists():
        print(f"data backend: eventlog (reusing {path})")
        return load_eventlog_dataset(path)
    config = dataset_config(name, scale=settings.scale,
                            seed=settings.data_seed)
    generate_eventlog(config, path, name=name.lower(), workers=args.workers)
    print(f"data backend: eventlog (generated {path})")
    return load_eventlog_dataset(path)


def _print_eval(model_name: str, dataset_name: str, result, z: int) -> None:
    print(f"{model_name} on {dataset_name}: "
          f"F1@{z}={100.0 * result.mean('f1'):.3f}% "
          f"NDCG@{z}={100.0 * result.mean('ndcg'):.3f}%")


def _run_train(args: argparse.Namespace, settings: "BenchmarkSettings") -> int:
    """Train one model, report held-out metrics, optionally checkpoint it."""
    from .eval import evaluate_model
    from .exp.runner import build_model
    dataset, split = _dataset_and_split(args, settings)
    model = build_model(args.model, dataset, settings)
    model.fit(split.train)
    result = evaluate_model(model, split.test, z=settings.z)
    _print_eval(args.model, dataset.name, result, settings.z)
    if args.save_model:
        from .io import save_model
        save_model(model, args.save_model)
        print(f"saved checkpoint: {args.save_model}")
    return 0


def _run_eval(args: argparse.Namespace, settings: "BenchmarkSettings") -> int:
    """Evaluation-only run: score a saved checkpoint on a held-out split."""
    if not args.load_model:
        raise SystemExit("error: eval needs --load-model PATH")
    from .eval import evaluate_model
    from .io import load_model
    model = load_model(args.load_model)
    dataset, split = _dataset_and_split(args, settings)
    result = evaluate_model(model, split.test, z=settings.z)
    _print_eval(f"{type(model).__name__} [{args.load_model}]",
                dataset.name, result, settings.z)
    return 0


def _build_online_stack(args: argparse.Namespace, publish, metrics):
    """Assemble log → trainer → refresh for ``serve --online``.

    Returns ``(log, trainer, refresh, close)``: the log's ``append`` is
    the serving tee, the trainer runs on a daemon thread, and ``close``
    tears all three down in dependency order.  ``refresh`` is ``None``
    when ``--refresh-every 0``.
    """
    from .io import load_model
    from .online import EventLog, OnlineTrainer, RefreshController
    log = EventLog(args.event_log)
    shadow = load_model(args.checkpoint, mmap=False)
    trainer = OnlineTrainer(
        shadow, log, lr=args.online_lr, optimizer=args.online_optimizer,
        batch_events=args.online_batch_events, metrics=metrics)
    trainer.start()
    refresh = None
    if args.refresh_every > 0:
        baseline = load_model(args.checkpoint, mmap=False)
        refresh = RefreshController(
            trainer, log, publish, window=args.window,
            refresh_epochs=args.refresh_epochs, baseline=baseline,
            interval=args.refresh_every, metrics=metrics)
        refresh.start()
    print(f"online learning enabled: lr={args.online_lr} "
          f"optimizer={args.online_optimizer} "
          f"batch={args.online_batch_events} events  "
          f"log={'memory-only' if args.event_log is None else args.event_log}"
          f"  refresh="
          f"{'off' if refresh is None else f'every {args.refresh_every}s'}")

    def close() -> None:
        if refresh is not None:
            refresh.stop()
        trainer.stop()
        log.close()

    return log, trainer, refresh, close


def _run_serve(args: argparse.Namespace) -> int:
    """Run the HTTP serving layer (see :mod:`repro.serve`)."""
    from .serve import ServeApp, ServeServer
    if args.online and not args.checkpoint:
        print("--online requires --checkpoint: the shadow trainer needs "
              "a model to start from")
        return 2
    retrieval = None
    if args.retrieval is not None:
        from .retrieval import RetrievalConfig
        retrieval = RetrievalConfig(mode=args.retrieval,
                                    shortlist=args.shortlist,
                                    nprobe=args.nprobe)
    if args.workers is not None and args.workers > 1:
        return _serve_mp(args, retrieval)
    app = ServeApp(session_capacity=args.session_capacity,
                   max_batch_size=args.max_batch_size,
                   max_wait_ms=args.max_wait_ms,
                   retrieval=retrieval)
    if not args.thread_sanitizer:
        return _serve_loop(args, app)
    from .analysis import threadsan
    with threadsan() as san:
        san.instrument_app(app)
        print("thread sanitizer enabled: lock-order, long-hold, and "
              "torn-read findings are reported on shutdown")
        code = _serve_loop(args, app)
        findings = san.findings
    if findings:
        print(san.render_report())
        return 1
    print("threadsan: no findings")
    return code


def _serve_loop(args: argparse.Namespace, app) -> int:
    from .serve import ServeServer
    if args.checkpoint:
        if args.quantize != "none":
            # Quantized single-process path: build the dense bundle once,
            # quantize its frozen tables, and adopt the result as-is (no
            # second build).  Same code path the mp workers run.
            from .io import load_model
            from .serve import build_artifacts, quantize_artifacts
            dense = build_artifacts(load_model(args.checkpoint),
                                    generation=1,
                                    path=str(args.checkpoint),
                                    retrieval=app.retrieval)
            app.registry.adopt(quantize_artifacts(dense, args.quantize))
            artifacts = app.registry.current()
            print(f"quantize={args.quantize}: frozen embedding tables "
                  f"stored at reduced precision (see docs/SERVING.md)")
        else:
            artifacts = app.load_checkpoint(args.checkpoint)
        print(f"loaded {artifacts.model_class} from {args.checkpoint} "
              f"(scorer: {artifacts.mode}, generation {artifacts.generation})")
        if app.retrieval is not None:
            if artifacts.retrieval is not None:
                print(f"retrieval: ivf "
                      f"(clusters={artifacts.retrieval.index.n_clusters}, "
                      f"shortlist={app.retrieval.shortlist}, "
                      f"nprobe={app.retrieval.nprobe})")
            else:
                print(f"retrieval: {app.retrieval.mode} "
                      f"(exact full-catalog scoring)")
    else:
        print("no --checkpoint given: serving degraded "
              "(popularity fallback) until one is installed")
    online_close = None
    if args.online:
        log, _trainer, _refresh, online_close = _build_online_stack(
            args, publish=app.install_model, metrics=app.metrics)
        app.event_sink = log.append
    server = ServeServer(app, host=args.host, port=args.port)
    host, port = server.address
    print(f"serving on http://{host}:{port}  "
          f"(POST /v1/recommend /v1/events /v1/explain, "
          f"GET /healthz /metrics)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        if online_close is not None:
            online_close()
    return 0


def _serve_mp(args: argparse.Namespace, retrieval) -> int:
    """Sharded multi-process serving (see :mod:`repro.serve.mp`).

    The coordinator owns the listening socket and routes by user-id
    hash; each worker serves its shard from a private HTTP port with
    read-only views into the shared-memory checkpoint.  The thread
    sanitizer, when requested, runs *inside every worker* — a finding
    in any worker turns into a non-zero exit code here.
    """
    from .serve import ServeCluster, ServeServer
    cluster = ServeCluster(num_workers=args.workers,
                           quantize=args.quantize,
                           retrieval=retrieval,
                           session_capacity=args.session_capacity,
                           max_batch_size=args.max_batch_size,
                           max_wait_ms=args.max_wait_ms,
                           host=args.host,
                           thread_sanitizer=args.thread_sanitizer)
    cluster.start()
    try:
        if args.checkpoint:
            artifacts = cluster.load_checkpoint(args.checkpoint)
            checkpoint = cluster.current_checkpoint()
            print(f"loaded {artifacts.model_class} from {args.checkpoint} "
                  f"(scorer: {artifacts.mode}, "
                  f"generation {artifacts.generation}, "
                  f"quantize={args.quantize}, "
                  f"segment {checkpoint.nbytes / 1e6:.1f} MB)")
        else:
            print("no --checkpoint given: serving degraded "
                  "(popularity fallback) until one is installed")
        online_close = None
        if args.online:
            # One coordinator-side log covers the whole fleet; refresh
            # publishes through cluster.install, which broadcasts the
            # new generation to every worker via shared memory.
            log, _trainer, _refresh, online_close = _build_online_stack(
                args, publish=cluster.install, metrics=cluster.metrics)
            cluster.event_sink = log.append
        server = ServeServer(cluster, host=args.host, port=args.port)
        host, port = server.address
        print(f"serving on http://{host}:{port} with {args.workers} "
              f"workers on ports {cluster.worker_ports()}  "
              f"(POST /v1/recommend /v1/events /v1/explain, "
              f"GET /healthz /metrics)")
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.shutdown()
            if online_close is not None:
                online_close()
    finally:
        exit_codes = cluster.close()
    bad = {wid: code for wid, code in exit_codes.items() if code}
    if bad:
        print(f"worker(s) exited non-zero: {bad} "
              f"(thread-sanitizer findings or crashes)")
        return 1
    return 0


def _run_grid(args: argparse.Namespace, settings: BenchmarkSettings) -> int:
    from .data import load_dataset
    grid = parse_grid_params(args.grid_param)
    dataset_name = (args.datasets or ["baby"])[0]
    dataset = load_dataset(dataset_name, scale=settings.scale,
                           seed=settings.data_seed)
    result = grid_search_causer(dataset, grid, settings,
                                metric=args.grid_metric,
                                workers=args.workers)
    rows = [(", ".join(f"{k}={v}" for k, v in overrides.items()), score)
            for overrides, score in result.top(10)]
    print(render_table(("configuration", f"{args.grid_metric}@{settings.z} (%)"),
                       rows,
                       title=f"Table III grid search — {dataset_name}"))
    best_overrides, best_score = result.best
    print(f"best: {best_overrides} -> {best_score:.3f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
