"""Command-line interface: regenerate any paper table/figure.

Usage::

    python -m repro table2
    python -m repro table4 --scale 0.05 --epochs 12
    python -m repro fig5 --datasets baby --cells gru
    python -m repro efficiency --quick

Each subcommand prints the same rows/series layout the paper reports.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .causal import run_identifiability_study
from .exp import (BenchmarkSettings, efficiency_study,
                  figure3_sequence_lengths, figure4_cluster_sweep,
                  figure5_epsilon_sweep, figure6_temperature_sweep,
                  figure7_explanation, figure8_case_studies, render_table,
                  table2_statistics, table4_overall, table5_ablation)

EXPERIMENTS = ("table2", "fig3", "table4", "fig4", "fig5", "fig6", "table5",
               "fig7", "fig8", "efficiency", "identifiability")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce tables/figures from the Causer paper "
                    "(ICDE 2023) on scaled synthetic profiles.")
    parser.add_argument("experiment", choices=EXPERIMENTS,
                        help="which table/figure to regenerate")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="dataset scale relative to Table II sizes")
    parser.add_argument("--epochs", type=int, default=12,
                        help="training epochs per model")
    parser.add_argument("--seed", type=int, default=1,
                        help="data-generation seed")
    parser.add_argument("--quick", action="store_true",
                        help="2-epoch smoke mode")
    parser.add_argument("--datasets", nargs="+", default=None,
                        help="restrict sweep/ablation datasets")
    parser.add_argument("--cells", nargs="+", default=None,
                        choices=["gru", "lstm"],
                        help="restrict sequential backbones")
    parser.add_argument("--detect-anomaly", action="store_true",
                        help="run with the autograd anomaly sanitizer: "
                             "NaN/Inf forward values and gradients abort "
                             "with the creating op and its traceback "
                             "(see repro.analysis)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    settings = BenchmarkSettings(scale=args.scale, num_epochs=args.epochs,
                                 data_seed=args.seed, quick=args.quick)
    sweep_kwargs = {}
    if args.datasets:
        sweep_kwargs["datasets"] = tuple(args.datasets)
    if args.cells:
        sweep_kwargs["cells"] = tuple(args.cells)

    if args.detect_anomaly:
        from .analysis import detect_anomaly
        with detect_anomaly():
            return _dispatch(args, settings, sweep_kwargs)
    return _dispatch(args, settings, sweep_kwargs)


def _dispatch(args: argparse.Namespace, settings: "BenchmarkSettings",
              sweep_kwargs: dict) -> int:
    if args.experiment == "table2":
        print(table2_statistics(settings).render())
    elif args.experiment == "fig3":
        print(figure3_sequence_lengths(settings).render())
    elif args.experiment == "table4":
        kwargs = {}
        if args.datasets:
            kwargs["datasets"] = tuple(args.datasets)
        print(table4_overall(settings, **kwargs).render())
    elif args.experiment == "fig4":
        print(figure4_cluster_sweep(settings, **sweep_kwargs).render())
    elif args.experiment == "fig5":
        print(figure5_epsilon_sweep(settings, **sweep_kwargs).render())
    elif args.experiment == "fig6":
        print(figure6_temperature_sweep(settings, **sweep_kwargs).render())
    elif args.experiment == "table5":
        kwargs = dict(sweep_kwargs)
        print(table5_ablation(settings, **kwargs).render())
    elif args.experiment == "fig7":
        kwargs = {}
        if args.cells:
            kwargs["cells"] = tuple(args.cells)
        print(figure7_explanation(settings, **kwargs).render())
    elif args.experiment == "fig8":
        print(figure8_case_studies(settings).render())
    elif args.experiment == "efficiency":
        print(efficiency_study(settings).render())
    elif args.experiment == "identifiability":
        reports = run_identifiability_study()
        rows = [(r.num_samples, r.mec_recovery_rate, r.mean_shd,
                 r.mean_skeleton_f1) for r in reports]
        print(render_table(("samples", "MEC recovery", "mean SHD",
                            "skeleton F1"), rows,
                           title="Theorem 1 — identifiability"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
