"""Online inference for trained checkpoints (`python -m repro serve`).

Layers, bottom-up:

* :mod:`repro.serve.metrics` — thread-safe counters + latency histograms
  with Prometheus text export,
* :mod:`repro.serve.sessions` — per-user recurrent state advanced
  incrementally per event (O(1) inside the model's history window), with
  a bit-identical full-replay fallback and LRU eviction,
* :mod:`repro.serve.registry` — checkpoint loading via :mod:`repro.io`,
  frozen artifact precompute (item-level causal matrix, ε-gate, cluster
  assignments, embedding tables) and lock-guarded hot swap,
* :mod:`repro.serve.scoring` — incremental and replay scorers whose
  rankings match offline :func:`repro.eval.evaluate_model` output,
* :mod:`repro.serve.batcher` — micro-batching scheduler
  (``max_batch_size`` / ``max_wait_ms``),
* :mod:`repro.serve.http` — the :class:`ServeApp` route core, a socket-free
  :class:`InProcessClient`, and the stdlib HTTP server,
* :mod:`repro.serve.shm` — shared-memory checkpoint transport: one
  coordinator materializes each generation's frozen artifacts (optionally
  fp16/int8-quantized) into a ``multiprocessing.shared_memory`` segment,
  workers attach zero-copy read-only views,
* :mod:`repro.serve.mp` — the sharded multi-process cluster: N spawn
  workers behind a user-id-hash router, refcounted segment unlink, a
  lock-free shared metrics slab, crash detection + respawn.
"""

from .batcher import MicroBatcher
from .http import InProcessClient, ServeApp, ServeError, ServeServer
from .metrics import MetricsRegistry
from .mp import ServeCluster, WorkerSpec, partition, worker_main
from .registry import (CausalServingArtifacts, CheckpointRegistry,
                       GRUServingArtifacts, RetrievalArtifact,
                       ServingArtifacts, build_artifacts, build_retrieval)
from .scoring import score_view_candidates, score_views, top_causal_edges
from .sessions import (RecurrentServingParams, ScoreView, SessionState,
                       SessionStore, gru_step, lstm_step)
from .shm import (SEGMENT_PREFIX, AttachedArtifacts, MetricsSlab,
                  ShmCheckpoint, cleanup_segments, frozen_table_bytes,
                  list_segments, publish_artifacts, quantize_artifacts)

__all__ = [
    "AttachedArtifacts", "CausalServingArtifacts", "CheckpointRegistry",
    "GRUServingArtifacts", "InProcessClient", "MetricsRegistry",
    "MetricsSlab", "MicroBatcher", "RecurrentServingParams",
    "RetrievalArtifact", "SEGMENT_PREFIX", "ScoreView", "ServeApp",
    "ServeCluster", "ServeError", "ServeServer", "ServingArtifacts",
    "SessionState", "SessionStore", "ShmCheckpoint", "WorkerSpec",
    "build_artifacts", "build_retrieval", "cleanup_segments",
    "frozen_table_bytes", "gru_step", "list_segments", "lstm_step",
    "partition", "publish_artifacts", "quantize_artifacts",
    "score_view_candidates", "score_views", "top_causal_edges",
    "worker_main",
]
