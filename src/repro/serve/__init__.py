"""Online inference for trained checkpoints (`python -m repro serve`).

Layers, bottom-up:

* :mod:`repro.serve.metrics` — thread-safe counters + latency histograms
  with Prometheus text export,
* :mod:`repro.serve.sessions` — per-user recurrent state advanced
  incrementally per event (O(1) inside the model's history window), with
  a bit-identical full-replay fallback and LRU eviction,
* :mod:`repro.serve.registry` — checkpoint loading via :mod:`repro.io`,
  frozen artifact precompute (item-level causal matrix, ε-gate, cluster
  assignments, embedding tables) and lock-guarded hot swap,
* :mod:`repro.serve.scoring` — incremental and replay scorers whose
  rankings match offline :func:`repro.eval.evaluate_model` output,
* :mod:`repro.serve.batcher` — micro-batching scheduler
  (``max_batch_size`` / ``max_wait_ms``),
* :mod:`repro.serve.http` — the :class:`ServeApp` route core, a socket-free
  :class:`InProcessClient`, and the stdlib HTTP server.
"""

from .batcher import MicroBatcher
from .http import InProcessClient, ServeApp, ServeError, ServeServer
from .metrics import MetricsRegistry
from .registry import (CausalServingArtifacts, CheckpointRegistry,
                       GRUServingArtifacts, RetrievalArtifact,
                       ServingArtifacts, build_artifacts, build_retrieval)
from .scoring import score_view_candidates, score_views, top_causal_edges
from .sessions import (RecurrentServingParams, ScoreView, SessionState,
                       SessionStore, gru_step, lstm_step)

__all__ = [
    "CausalServingArtifacts", "CheckpointRegistry", "GRUServingArtifacts",
    "InProcessClient", "MetricsRegistry", "MicroBatcher",
    "RecurrentServingParams", "RetrievalArtifact", "ScoreView", "ServeApp",
    "ServeError", "ServeServer", "ServingArtifacts", "SessionState",
    "SessionStore", "build_artifacts", "build_retrieval", "gru_step",
    "lstm_step", "score_view_candidates", "score_views", "top_causal_edges",
]
