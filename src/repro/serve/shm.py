"""Shared-memory checkpoint transport for multi-process serving.

One coordinator process materializes each generation's frozen artifact
bundle into a single POSIX shared-memory segment; N worker processes
attach read-only numpy views over the same physical pages.  The segment
layout is::

    [0:8]                u64 little-endian manifest length M
    [8:8+M]              manifest pickle (object graph + array table)
    [align64(8+M):]      array pool — every ndarray, 64-byte aligned

The manifest is produced by a :class:`pickle.Pickler` whose
``persistent_id`` externalizes every ndarray it meets (model parameters,
composed embedding tables, Ŵ and its ε-gated copy, IVF inverted lists)
into the pool, deduplicated by object identity — the pickle stream holds
only (dtype, shape, offset) stubs.  Attaching reverses the trick:
``persistent_load`` returns zero-copy ``np.ndarray`` views over the
segment buffer, marked read-only, so a worker's resident cost for the
artifacts is page tables, not pages.

Quantization happens at publish time (:func:`quantize_artifacts`): the
designated frozen tables (output/input embedding tables, item tower,
inverted lists) are rewrapped as :class:`repro.retrieval.towers.
QuantizedTable`; the serving scorers dequantize on the fly.  The
``none`` mode publishes the float64 arrays untouched, which keeps
multi-process scores byte-identical to single-process serving.

Lifetime: the coordinator owns ``unlink`` (and its resource tracker is
the crash backstop); workers must *unregister* attached segments from
their own resource tracker, otherwise the first worker to exit would
destroy a segment its siblings still map (see :func:`attach_segment`).
"""

from __future__ import annotations

import copy
import io
import itertools
import os
import pickle
import struct
import threading
from dataclasses import dataclass
from dataclasses import replace as dataclass_replace
from multiprocessing import shared_memory
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..retrieval import IVFIndex
from ..retrieval.towers import QUANTIZE_MODES, QuantizedTable, table_nbytes
from .registry import (CausalServingArtifacts, GRUServingArtifacts,
                       ServingArtifacts)

#: Every segment this module creates carries this name prefix, so leak
#: checks and emergency cleanup can find ours without touching other
#: tenants of ``/dev/shm``.
SEGMENT_PREFIX = "repro-serve"

_ALIGN = 64
_HEADER = struct.Struct("<Q")
_name_seq = itertools.count()
#: Serializes SharedMemory construction against the resource-tracker
#: patch in :func:`attach_segment`, so a concurrent create cannot slip
#: through the window where registration is disabled.
_tracker_lock = threading.Lock()


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


def _new_segment(tag: str, size: int) -> shared_memory.SharedMemory:
    """Create a uniquely-named segment (pid + sequence keeps local runs
    apart; collide-and-retry covers stale leftovers from killed runs)."""
    while True:
        name = f"{SEGMENT_PREFIX}-{tag}-p{os.getpid()}-{next(_name_seq)}"
        try:
            with _tracker_lock:
                return shared_memory.SharedMemory(name=name, create=True,
                                                  size=max(size, 1))
        except FileExistsError:
            continue


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without adopting its lifetime.

    ``SharedMemory(name=...)`` registers the mapping with the attaching
    process's resource tracker (until Python 3.13's ``track=False``),
    which would unlink the segment when this process exits even though
    the coordinator and sibling workers still use it.  On older Pythons
    the registration is suppressed outright (unregistering after the
    fact would also cancel the *creator's* registration when attaching
    in-process, the single-process ``--quantize`` path).
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:                        # Python < 3.13
        pass
    from multiprocessing import resource_tracker
    with _tracker_lock:
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def list_segments(prefix: str = SEGMENT_PREFIX) -> List[str]:
    """Names of live segments under ``prefix`` (empty off-Linux)."""
    try:
        entries = os.listdir("/dev/shm")
    except OSError:
        return []
    return sorted(entry for entry in entries if entry.startswith(prefix))


def cleanup_segments(prefix: str = SEGMENT_PREFIX) -> List[str]:
    """Force-unlink every segment under ``prefix``; returns the names.

    The test-fixture finalizer: guarantees a failing test cannot leak
    ``/dev/shm`` entries into later tests (or the host).
    """
    removed = []
    for name in list_segments(prefix):
        try:
            # Plain (tracked) attach: unlink() unregisters, so the
            # register/unregister pair stays balanced in the tracker.
            segment = shared_memory.SharedMemory(name=name)
            segment.unlink()
            segment.close()
            removed.append(name)
        except OSError:
            continue
    return removed


# ----------------------------------------------------------------------
# ndarray-externalizing pickler
# ----------------------------------------------------------------------

class _PoolPickler(pickle.Pickler):
    """Pickles an object graph, diverting every ndarray into a pool.

    Arrays are deduplicated by object identity — artifact fields are
    views of model parameters (``param.data``), and pooling them twice
    would double the segment.  ``_keepalive`` pins the originals so
    ``id()`` cannot be recycled mid-dump.
    """

    def __init__(self, buffer: io.BytesIO) -> None:
        super().__init__(buffer, protocol=pickle.HIGHEST_PROTOCOL)
        self.arrays: List[np.ndarray] = []
        self._index: Dict[int, int] = {}
        self._keepalive: List[np.ndarray] = []

    def persistent_id(self, obj: Any) -> Optional[int]:
        if isinstance(obj, np.ndarray) and obj.dtype != object:
            idx = self._index.get(id(obj))
            if idx is None:
                idx = len(self.arrays)
                # No-op for already-contiguous inputs (the common case);
                # memmap-backed params stream their pages here once.
                self.arrays.append(np.ascontiguousarray(obj))
                self._index[id(obj)] = idx
                self._keepalive.append(obj)
            return idx
        return None


class _PoolUnpickler(pickle.Unpickler):
    def __init__(self, buffer: io.BytesIO, arrays: List[np.ndarray]) -> None:
        super().__init__(buffer)
        self._arrays = arrays

    def persistent_load(self, pid: int) -> np.ndarray:
        return self._arrays[pid]


# ----------------------------------------------------------------------
# quantization at publish time
# ----------------------------------------------------------------------

def frozen_table_bytes(artifacts: ServingArtifacts) -> int:
    """Storage footprint of the quantizable frozen tables, in bytes."""
    total = table_nbytes(getattr(artifacts, "output_table", None))
    if artifacts.recurrent is not None:
        total += table_nbytes(artifacts.recurrent.input_table)
    if artifacts.retrieval is not None:
        total += table_nbytes(artifacts.retrieval.tower.vectors)
        total += sum(table_nbytes(vectors)
                     for vectors in artifacts.retrieval.index.list_vectors)
    return total


def quantize_artifacts(artifacts: ServingArtifacts,
                       mode: str) -> ServingArtifacts:
    """A shallow re-wrap of ``artifacts`` with quantized frozen tables.

    Quantizes the embedding tables every score reads — the composed
    input table, the output table, the item tower, and the IVF inverted
    lists.  Biases, the causal matrices Ŵ / ``Ŵ ⊙ 1(Ŵ > ε)``, attention
    and adapter weights, and the model itself stay float64: they are
    either small, or (the causal head's case) part of the bit-for-bit
    eq.-10 contract that quantization tolerances are defined against.
    ``none`` returns the input unchanged.
    """
    if mode not in QUANTIZE_MODES:
        raise ValueError(f"quantize must be one of {QUANTIZE_MODES}, "
                         f"got {mode!r}")
    if mode == "none":
        return artifacts
    bundle = copy.copy(artifacts)
    if bundle.recurrent is not None:
        bundle.recurrent = dataclass_replace(
            bundle.recurrent,
            input_table=QuantizedTable.quantize(
                bundle.recurrent.input_table, mode))
    if isinstance(bundle, (CausalServingArtifacts, GRUServingArtifacts)):
        bundle.output_table = QuantizedTable.quantize(bundle.output_table,
                                                      mode)
    if bundle.retrieval is not None:
        retrieval = bundle.retrieval
        tower = dataclass_replace(
            retrieval.tower,
            vectors=QuantizedTable.quantize(retrieval.tower.vectors, mode))
        old = retrieval.index
        index = IVFIndex(
            old.centroids, old.list_ids,
            [QuantizedTable.quantize(vectors, mode)
             for vectors in old.list_vectors],
            old.list_bias, scorer=old.scorer_name, seed=old.seed)
        bundle.retrieval = dataclass_replace(retrieval, tower=tower,
                                             index=index)
    return bundle


# ----------------------------------------------------------------------
# publish / attach
# ----------------------------------------------------------------------

@dataclass
class ShmCheckpoint:
    """Coordinator-side handle for one published generation."""

    name: str
    generation: int
    quantize: str
    nbytes: int                  # whole segment
    artifact_bytes: int          # array pool only
    table_bytes: int             # quantizable tables, post-quantization
    table_bytes_dense: int       # same tables before quantization
    _shm: shared_memory.SharedMemory

    def close(self) -> None:
        try:
            self._shm.close()
        except OSError:
            pass

    def unlink(self) -> None:
        try:
            self._shm.unlink()
        except OSError:          # already gone (double unlink is fine)
            pass


class AttachedArtifacts:
    """Worker-side handle: zero-copy artifact views over one segment."""

    def __init__(self, name: str) -> None:
        self._shm = attach_segment(name)
        self.name = name
        buf = self._shm.buf
        (manifest_len,) = _HEADER.unpack_from(buf, 0)
        manifest = pickle.loads(bytes(buf[_HEADER.size:
                                          _HEADER.size + manifest_len]))
        pool_start = _align(_HEADER.size + manifest_len)
        views: List[np.ndarray] = []
        for offset, dtype, shape in manifest["arrays"]:
            dt = np.dtype(dtype)
            start = pool_start + offset
            count = int(np.prod(shape, dtype=np.int64))
            # Deliberately ``frombuffer`` over a memoryview *slice*, not
            # ``np.ndarray(buffer=shm.buf, offset=...)``: numpy releases
            # its Py_buffer right after construction, so a plain ndarray
            # does NOT pin the mmap and ``SharedMemory.close`` would
            # silently unmap memory that in-flight requests still read
            # (observed as a worker SIGSEGV mid-swap).  A sliced
            # memoryview keeps an export on the mmap for as long as any
            # derived array lives, turning a premature close into the
            # BufferError that :meth:`detach` retries on.
            slab = buf[start:start + count * dt.itemsize]
            view = np.frombuffer(slab, dtype=dt).reshape(shape)
            view.setflags(write=False)
            views.append(view)
        self.artifacts: Optional[ServingArtifacts] = _PoolUnpickler(
            io.BytesIO(manifest["payload"]), views).load()
        self.generation: int = manifest["generation"]
        self.quantize: str = manifest["quantize"]

    def detach(self) -> bool:
        """Drop the bundle and try to detach; ``False`` while views live.

        ``SharedMemory.close`` raises ``BufferError`` as long as any
        numpy view still exports the segment buffer — in-flight requests
        may hold the old bundle for a while after a hot swap, so callers
        retry until the release sticks.
        """
        self.artifacts = None
        try:
            self._shm.close()
        except BufferError:
            return False
        return True


def publish_artifacts(artifacts: ServingArtifacts,
                      quantize: str = "none") -> ShmCheckpoint:
    """Materialize one generation's frozen bundle into shared memory."""
    dense_bytes = frozen_table_bytes(artifacts)
    bundle = quantize_artifacts(artifacts, quantize)
    if bundle.model is not None:
        # Gradients are training state, not serving state — drop them
        # rather than ship megabytes of stale accumulators per worker.
        bundle.model.zero_grad()
    payload = io.BytesIO()
    pickler = _PoolPickler(payload)
    pickler.dump(bundle)
    offsets: List[Tuple[int, str, Tuple[int, ...]]] = []
    cursor = 0
    for array in pickler.arrays:
        offsets.append((cursor, array.dtype.str, array.shape))
        cursor = _align(cursor + array.nbytes)
    manifest = pickle.dumps({
        "payload": payload.getvalue(),
        "arrays": offsets,
        "generation": artifacts.generation,
        "quantize": quantize,
    }, protocol=pickle.HIGHEST_PROTOCOL)
    pool_start = _align(_HEADER.size + len(manifest))
    shm = _new_segment(f"g{artifacts.generation}", pool_start + cursor)
    buf = shm.buf
    _HEADER.pack_into(buf, 0, len(manifest))
    buf[_HEADER.size:_HEADER.size + len(manifest)] = manifest
    for array, (offset, dtype, shape) in zip(pickler.arrays, offsets):
        if array.size == 0:
            continue
        dest = np.ndarray(shape, dtype=np.dtype(dtype), buffer=buf,
                          offset=pool_start + offset)
        dest[...] = array
    return ShmCheckpoint(
        name=shm.name, generation=artifacts.generation, quantize=quantize,
        nbytes=shm.size, artifact_bytes=cursor,
        table_bytes=frozen_table_bytes(bundle),
        table_bytes_dense=dense_bytes, _shm=shm)


# ----------------------------------------------------------------------
# cross-worker metrics slab
# ----------------------------------------------------------------------

#: Gauge slots (per worker row): last installed generation, worker pid,
#: and a loop heartbeat so a stuck worker is visible from /metrics.
SLAB_GAUGES = ("generation", "pid", "heartbeat")
#: Counter slots mirrored from each worker's MetricsRegistry.
SLAB_COUNTERS = ("requests", "recommend", "events", "errors", "fallback")
#: Ring-buffer capacity for recommend latencies (seconds), per worker.
SLAB_LATENCY_RING = 512

_SLAB_COLS = (len(SLAB_GAUGES) + len(SLAB_COUNTERS) + 2 + SLAB_LATENCY_RING)
_RING_COUNT = len(SLAB_GAUGES) + len(SLAB_COUNTERS)      # observations
_RING_SUM = _RING_COUNT + 1
_RING_BASE = _RING_SUM + 1


class MetricsSlab:
    """One float64 matrix in shared memory, one row per worker.

    Every slot is written by exactly one process (worker ``i`` owns row
    ``i``; the coordinator only reads), so there are no cross-process
    locks: aligned 8-byte stores are atomic on every platform numpy
    supports, and the merge loop tolerates counters that move while it
    reads.
    """

    def __init__(self, num_workers: int, name: Optional[str] = None) -> None:
        self.num_workers = num_workers
        size = num_workers * _SLAB_COLS * 8
        if name is None:
            self._shm = _new_segment("metrics", size)
            self._owner = True
        else:
            self._shm = attach_segment(name)
            self._owner = False
        self.name = self._shm.name
        self.cells = np.ndarray((num_workers, _SLAB_COLS), dtype=np.float64,
                               buffer=self._shm.buf)
        if self._owner:
            self.cells[...] = 0.0

    # -- single-writer (worker) side ----------------------------------
    def set_gauge(self, worker: int, key: str, value: float) -> None:
        self.cells[worker, SLAB_GAUGES.index(key)] = value

    def add(self, worker: int, key: str, delta: float = 1.0) -> None:
        self.cells[worker, len(SLAB_GAUGES)
                  + SLAB_COUNTERS.index(key)] += delta

    def observe(self, worker: int, seconds: float) -> None:
        row = self.cells[worker]
        count = int(row[_RING_COUNT])
        row[_RING_BASE + count % SLAB_LATENCY_RING] = seconds
        row[_RING_SUM] += seconds
        row[_RING_COUNT] = count + 1

    # -- reader (coordinator) side ------------------------------------
    def gauge(self, worker: int, key: str) -> float:
        return float(self.cells[worker, SLAB_GAUGES.index(key)])

    def counters(self, worker: int) -> Dict[str, float]:
        base = len(SLAB_GAUGES)
        return {key: float(self.cells[worker, base + i])
                for i, key in enumerate(SLAB_COUNTERS)}

    def latencies(self, worker: int) -> np.ndarray:
        row = self.cells[worker]
        count = int(row[_RING_COUNT])
        window = min(count, SLAB_LATENCY_RING)
        return row[_RING_BASE:_RING_BASE + window].copy()

    def observation_count(self, worker: int) -> int:
        return int(self.cells[worker, _RING_COUNT])

    def generations(self) -> List[int]:
        return [int(self.gauge(w, "generation"))
                for w in range(self.num_workers)]

    def close(self) -> None:
        self.cells = None
        try:
            self._shm.close()
        except (OSError, BufferError):
            pass

    def unlink(self) -> None:
        try:
            self._shm.unlink()
        except OSError:
            pass
