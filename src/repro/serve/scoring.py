"""Online scorers: turn session snapshots into full-catalog scores.

Two paths, chosen by the registry at artifact-build time:

* **incremental** — Causer (``filtering_mode="shared"``) and GRU4Rec reuse
  the recurrent states the session store advanced event-by-event; only the
  cheap head (attention + ε-gated causal aggregation + output dot product
  for Causer, projection + dot product for GRU4Rec) runs per request.  The
  head replicates ``Causer._logits_shared`` / ``GRU4Rec.score_samples``
  operation-for-operation, including the masked-softmax epsilon of
  :func:`repro.nn.fused.fused_masked_softmax`.
* **replay** — every other model scores through its own
  ``score_samples`` batch path, which *is* the offline scorer, so online
  and offline agree trivially.

Both paths end in :func:`repro.models.base.rank_top_z`, so ranking and
tie-breaking match offline evaluation exactly.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..data.interactions import EvalSample
from ..retrieval.towers import as_dense, take_rows
from .registry import (CausalServingArtifacts, GRUServingArtifacts,
                       ServingArtifacts)
from .sessions import ScoreView


def _alpha(states: np.ndarray, last: np.ndarray,
           proj: np.ndarray) -> np.ndarray:
    """Per-step attention over an all-valid history, shape ``(T,)``.

    Same numerics as ``BilinearAttention.raw_scores`` followed by
    ``fused_masked_softmax`` with an all-true mask (every session event is
    a real step — padding never reaches the serving path).
    """
    if proj is None:
        scores = np.zeros(states.shape[0])
    else:
        projected = last @ proj.T                 # (1, H)
        scores = states @ projected[0]            # (T,)
    shifted = scores - scores.max()
    exp = np.exp(shifted)
    return exp / (exp.sum() + 1e-12)


def _score_causer(artifacts: CausalServingArtifacts, view: ScoreView,
                  candidates: Optional[np.ndarray] = None) -> np.ndarray:
    """Eq. 10 logits from one session snapshot.

    With ``candidates`` (an id array) the head runs restricted to those
    columns, **bit-identical** to the full-catalog pass gathered at the
    same columns — the contract the retrieval re-rank stage relies on.
    BLAS matmuls pick different kernels (and accumulation orders) per
    output shape, so nothing candidate-shaped may go through one: the
    candidate axis only ever sees elementwise arithmetic and per-row
    pairwise sums (whose bits depend on the reduced length alone), and
    the time contraction is an explicit loop over the ≤ ``max_history``
    steps.  The only matmul, ``states @ Vᵀ``, is candidate-independent.

    Quantized output tables dequantize on the fly (``as_dense`` /
    ``take_rows``): dequantization is row-independent, so the candidate
    restriction stays bit-identical to the gathered full pass, and the
    ``--quantize none`` path is byte-for-byte today's arithmetic.
    """
    catalog = (artifacts.num_items + 1 if candidates is None
               else candidates.shape[0])
    out_table = (as_dense(artifacts.output_table) if candidates is None
                 else take_rows(artifacts.output_table, candidates))
    out_bias = (artifacts.output_bias if candidates is None
                else artifacts.output_bias[candidates])
    if view.steps == 0 or view.states is None:
        # Empty history: zero context, so only the popularity prior scores.
        return out_bias.copy()
    states = view.states                          # (T, H)
    alpha = _alpha(states, view.last, artifacts.attention_proj)
    if artifacts.use_causal:
        effects = np.zeros((view.steps, catalog))
        for t, basket in enumerate(view.events):
            rows = artifacts.gated_matrix[list(basket)]
            if candidates is not None:
                rows = rows[:, candidates]
            effects[t] = rows.sum(axis=0)
    else:
        effects = np.ones((view.steps, catalog))
    weights = effects * alpha[:, None]            # (T, C)
    proj = states @ artifacts.adapt_weight.T      # (T, d_e)
    scores = out_bias.copy()
    for t in range(view.steps):
        dots = (out_table * proj[t]).sum(axis=1)  # (C,)
        scores = scores + weights[t] * dots
    return scores


def _score_gru_batch(artifacts: GRUServingArtifacts,
                     views: Sequence[ScoreView]) -> np.ndarray:
    """GRU4Rec head over a micro-batch of views.

    The projection runs per view — ``(1, H)`` matmuls, never a stacked
    GEMM — and the output stage is an elementwise multiply + per-row sum:
    both choices keep every view's scores bit-identical no matter how the
    batcher grouped it, which is what lets the retrieval re-rank
    (:func:`score_view_candidates`) reproduce the full pass exactly.
    """
    hidden = artifacts.recurrent.hidden_size
    out_table = as_dense(artifacts.output_table)
    out = np.empty((len(views), out_table.shape[0]))
    for row, view in enumerate(views):
        last = (np.zeros((1, hidden)) if view.last is None else view.last)
        rep = last @ artifacts.project_weight.T + artifacts.project_bias
        out[row] = ((out_table * rep[0]).sum(axis=1)
                    + artifacts.output_bias)
    return out


def _score_replay(artifacts: ServingArtifacts,
                  views: Sequence[ScoreView]) -> np.ndarray:
    """Replay the stored events through the model's offline batch scorer."""
    samples = [
        EvalSample(user_id=view.user_id,
                   history=tuple(view.events[-artifacts.max_history:])
                   or ((0,),),
                   target=())
        for view in views]
    return artifacts.model.score_samples(samples)


def score_views(artifacts: ServingArtifacts,
                views: Sequence[ScoreView]) -> np.ndarray:
    """Full-catalog scores for a micro-batch of sessions: ``(B, V + 1)``.

    Every view must belong to ``artifacts``' generation (the batcher groups
    by artifact identity before calling).
    """
    if not views:
        return np.zeros((0, artifacts.num_items + 1))
    if isinstance(artifacts, CausalServingArtifacts):
        return np.stack([_score_causer(artifacts, view) for view in views])
    if isinstance(artifacts, GRUServingArtifacts):
        return _score_gru_batch(artifacts, views)
    return _score_replay(artifacts, views)


def score_view_candidates(artifacts: ServingArtifacts, view: ScoreView,
                          candidates: np.ndarray) -> np.ndarray:
    """Exact-head scores restricted to ``candidates`` for one session.

    The retrieval re-rank entry point: same arithmetic as
    :func:`score_views`, run only over the candidate columns.  For the
    incremental heads (Causer eq. 10, GRU4Rec projection) every
    per-candidate value is computed by row/column-independent operations,
    so the result is bit-identical to the full-catalog scores gathered at
    ``candidates``; replay models score the full catalog through their
    own batch path and gather (identical by construction).
    """
    candidates = np.asarray(candidates, dtype=np.int64)
    if candidates.size == 0:
        return np.zeros(0)
    if isinstance(artifacts, CausalServingArtifacts):
        return _score_causer(artifacts, view, candidates)
    if isinstance(artifacts, GRUServingArtifacts):
        hidden = artifacts.recurrent.hidden_size
        last = (np.zeros((1, hidden)) if view.last is None
                else view.last)
        rep = last @ artifacts.project_weight.T + artifacts.project_bias
        return ((take_rows(artifacts.output_table, candidates)
                 * rep[0]).sum(axis=1)
                + artifacts.output_bias[candidates])
    return _score_replay(artifacts, [view])[0][candidates]


def popularity_scores(counts: np.ndarray, num_rows: int = 1) -> np.ndarray:
    """Degraded-mode scores: observed event frequency per item."""
    return np.tile(counts.astype(np.float64), (num_rows, 1))


def top_causal_edges(artifacts: CausalServingArtifacts,
                     events: Sequence[Sequence[int]], target_item: int,
                     top: int = 5) -> List[dict]:
    """Top causal (history item → target) edges for ``/v1/explain``.

    Runs the §V-E explanation protocol (:func:`repro.core.explain.
    explanation_breakdown`) on the session's events, flattened to singleton
    baskets as the protocol requires; ties broken by recency (later
    occurrences first, matching a stable sort on the reversed order).
    """
    from ..core.explain import explanation_breakdown
    from ..data.explanation import ExplanationSample

    history = tuple((int(item),) for basket in events for item in basket)
    if not history:
        return []
    sample = ExplanationSample(user_id=0, history=history,
                               target_item=int(target_item), cause_items=())
    breakdown = explanation_breakdown(artifacts.model, sample)
    order = np.argsort(-breakdown.combined, kind="stable")[:top]
    return [{"item": int(breakdown.history_items[idx]),
             "position": int(idx),
             "causal_effect": float(breakdown.causal_effect[idx]),
             "attention": float(breakdown.attention[idx]),
             "combined": float(breakdown.combined[idx])}
            for idx in order]
