"""Online scorers: turn session snapshots into full-catalog scores.

Two paths, chosen by the registry at artifact-build time:

* **incremental** — Causer (``filtering_mode="shared"``) and GRU4Rec reuse
  the recurrent states the session store advanced event-by-event; only the
  cheap head (attention + ε-gated causal aggregation + output dot product
  for Causer, projection + dot product for GRU4Rec) runs per request.  The
  head replicates ``Causer._logits_shared`` / ``GRU4Rec.score_samples``
  operation-for-operation, including the masked-softmax epsilon of
  :func:`repro.nn.fused.fused_masked_softmax`.
* **replay** — every other model scores through its own
  ``score_samples`` batch path, which *is* the offline scorer, so online
  and offline agree trivially.

Both paths end in :func:`repro.models.base.rank_top_z`, so ranking and
tie-breaking match offline evaluation exactly.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..data.interactions import EvalSample
from .registry import (CausalServingArtifacts, GRUServingArtifacts,
                       ServingArtifacts)
from .sessions import ScoreView


def _alpha(states: np.ndarray, last: np.ndarray,
           proj: np.ndarray) -> np.ndarray:
    """Per-step attention over an all-valid history, shape ``(T,)``.

    Same numerics as ``BilinearAttention.raw_scores`` followed by
    ``fused_masked_softmax`` with an all-true mask (every session event is
    a real step — padding never reaches the serving path).
    """
    if proj is None:
        scores = np.zeros(states.shape[0])
    else:
        projected = last @ proj.T                 # (1, H)
        scores = states @ projected[0]            # (T,)
    shifted = scores - scores.max()
    exp = np.exp(shifted)
    return exp / (exp.sum() + 1e-12)


def _score_causer(artifacts: CausalServingArtifacts,
                  view: ScoreView) -> np.ndarray:
    """Eq. 10 full-catalog logits from one session snapshot."""
    catalog = artifacts.num_items + 1
    if view.steps == 0 or view.states is None:
        # Empty history: zero context, so only the popularity prior scores.
        return artifacts.output_bias.copy()
    states = view.states                          # (T, H)
    alpha = _alpha(states, view.last, artifacts.attention_proj)
    if artifacts.use_causal:
        effects = np.zeros((view.steps, catalog))
        for t, basket in enumerate(view.events):
            effects[t] = artifacts.gated_matrix[list(basket)].sum(axis=0)
    else:
        effects = np.ones((view.steps, catalog))
    weights = effects * alpha[:, None]            # (T, C)
    context = weights.T @ states                  # (C, H)
    adapted = context @ artifacts.adapt_weight.T  # (C, d_e)
    return ((adapted * artifacts.output_table).sum(axis=1)
            + artifacts.output_bias)


def _score_gru_batch(artifacts: GRUServingArtifacts,
                     views: Sequence[ScoreView]) -> np.ndarray:
    """GRU4Rec head over a micro-batch: one stacked GEMM for all views."""
    hidden = artifacts.recurrent.hidden_size
    last = np.zeros((len(views), hidden))
    for row, view in enumerate(views):
        if view.last is not None:
            last[row] = view.last[0]
    rep = last @ artifacts.project_weight.T + artifacts.project_bias
    return rep @ artifacts.output_table.T + artifacts.output_bias[None, :]


def _score_replay(artifacts: ServingArtifacts,
                  views: Sequence[ScoreView]) -> np.ndarray:
    """Replay the stored events through the model's offline batch scorer."""
    samples = [
        EvalSample(user_id=view.user_id,
                   history=tuple(view.events[-artifacts.max_history:])
                   or ((0,),),
                   target=())
        for view in views]
    return artifacts.model.score_samples(samples)


def score_views(artifacts: ServingArtifacts,
                views: Sequence[ScoreView]) -> np.ndarray:
    """Full-catalog scores for a micro-batch of sessions: ``(B, V + 1)``.

    Every view must belong to ``artifacts``' generation (the batcher groups
    by artifact identity before calling).
    """
    if not views:
        return np.zeros((0, artifacts.num_items + 1))
    if isinstance(artifacts, CausalServingArtifacts):
        return np.stack([_score_causer(artifacts, view) for view in views])
    if isinstance(artifacts, GRUServingArtifacts):
        return _score_gru_batch(artifacts, views)
    return _score_replay(artifacts, views)


def popularity_scores(counts: np.ndarray, num_rows: int = 1) -> np.ndarray:
    """Degraded-mode scores: observed event frequency per item."""
    return np.tile(counts.astype(np.float64), (num_rows, 1))


def top_causal_edges(artifacts: CausalServingArtifacts,
                     events: Sequence[Sequence[int]], target_item: int,
                     top: int = 5) -> List[dict]:
    """Top causal (history item → target) edges for ``/v1/explain``.

    Runs the §V-E explanation protocol (:func:`repro.core.explain.
    explanation_breakdown`) on the session's events, flattened to singleton
    baskets as the protocol requires; ties broken by recency (later
    occurrences first, matching a stable sort on the reversed order).
    """
    from ..core.explain import explanation_breakdown
    from ..data.explanation import ExplanationSample

    history = tuple((int(item),) for basket in events for item in basket)
    if not history:
        return []
    sample = ExplanationSample(user_id=0, history=history,
                               target_item=int(target_item), cause_items=())
    breakdown = explanation_breakdown(artifacts.model, sample)
    order = np.argsort(-breakdown.combined, kind="stable")[:top]
    return [{"item": int(breakdown.history_items[idx]),
             "position": int(idx),
             "causal_effect": float(breakdown.causal_effect[idx]),
             "attention": float(breakdown.attention[idx]),
             "combined": float(breakdown.combined[idx])}
            for idx in order]
