"""Sharded multi-process serving: coordinator, workers, hash router.

Architecture (see ``docs/SERVING.md`` → "Multi-process architecture"):

* **Coordinator** (:class:`ServeCluster`) owns the
  :class:`~repro.serve.registry.CheckpointRegistry`.  ``install`` builds
  the frozen bundle once (riding the registry's generation counter),
  publishes it into one shared-memory segment
  (:func:`repro.serve.shm.publish_artifacts`, optionally quantized) and
  broadcasts the segment name to every worker over a per-worker pipe.
* **Workers** are ``spawn``-started processes, each running a complete
  single-process :class:`~repro.serve.http.ServeApp` +
  ``ThreadingHTTPServer`` on an ephemeral localhost port.  A worker
  attaches the segment read-only (zero-copy numpy views), adopts the
  bundle via :meth:`CheckpointRegistry.adopt`, and acks.  Old segments
  are refcounted: a worker acks ``detached`` once the last in-flight
  request drops the old bundle, and the coordinator unlinks a segment
  only after every live worker acked (dead workers count as detached).
* **Router**: sessions are partitioned by user-id hash
  (:func:`partition`), so one user's recurrent state lives in exactly
  one process and the hot path needs no cross-process locks.  The
  coordinator-side router forwards each request to the owning worker
  over keep-alive HTTP connections (one set per router thread).

Worker lifecycle reuses :mod:`repro.parallel`'s idioms: BLAS thread
pinning (both in the spawn environment and again inside the worker),
explicit ``daemon=`` flags, a reaper thread that detects crashed
workers and respawns them, and a graceful SIGTERM drain.

Metrics: each worker mirrors its headline counters into one row of a
shared :class:`~repro.serve.shm.MetricsSlab`; the router's ``/metrics``
merges all rows into a single Prometheus exposition with per-worker
``serve_worker_generation`` / ``serve_worker_up`` gauges, so a stuck or
stale worker is visible at a glance.
"""

from __future__ import annotations

import http.client
import json
import multiprocessing
import os
import queue
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

import numpy as np

from ..parallel.pool import _pin_blas_environ, _pinned_parent_env
from ..retrieval import RetrievalConfig
from ..retrieval.towers import QUANTIZE_MODES
from .http import JSON_TYPE, TEXT_TYPE, Response, ServeApp, ServeError
from .http import ServeServer, _require_int
from .metrics import MetricsRegistry
from .registry import CheckpointRegistry, ServingArtifacts
from .shm import AttachedArtifacts, MetricsSlab, ShmCheckpoint
from .shm import publish_artifacts

#: Knuth's multiplicative hash keeps sequential user ids uniformly
#: spread over workers while staying trivially portable (no PYTHONHASHSEED
#: dependence — the partition must agree across processes and restarts).
_HASH_MULT = 0x9E3779B1


def partition(user_id: int, num_workers: int) -> int:
    """The worker index owning ``user_id``'s session state."""
    return ((user_id * _HASH_MULT) & 0xFFFFFFFF) % num_workers


def worker_uss_kb() -> Optional[int]:
    """Private (unshared) memory of this process in kB, from smaps.

    Plain RSS counts the shared artifact pages once per attached worker;
    USS (private clean + dirty) is the true incremental cost of one more
    worker, which is what the RSS-per-worker acceptance bound is about.
    """
    try:
        with open("/proc/self/smaps_rollup", "r", encoding="ascii") as fh:
            total = 0
            for line in fh:
                if line.startswith(("Private_Clean:", "Private_Dirty:")):
                    total += int(line.split()[1])
            return total
    except OSError:
        return None


def worker_rss_kb() -> Optional[int]:
    try:
        with open("/proc/self/status", "r", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return None


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a spawned worker needs, picklable for ``spawn``."""

    worker_id: int
    num_workers: int
    slab_name: str
    host: str = "127.0.0.1"
    session_capacity: int = 10_000
    max_batch_size: int = 32
    max_wait_ms: float = 2.0
    default_z: int = 5
    retrieval: Optional[RetrievalConfig] = None
    thread_sanitizer: bool = False


class SlabMetrics(MetricsRegistry):
    """Worker-local registry that mirrors headline series into the slab.

    The slab row is single-writer (this worker only), so the mirror
    needs no cross-process locks; the in-process registry keeps serving
    the worker's own ``/metrics`` endpoint unchanged.
    """

    def __init__(self, slab: MetricsSlab, worker_id: int) -> None:
        super().__init__()
        self.slab = slab
        self.worker_id = worker_id

    def inc(self, name, labels=None, by: float = 1.0) -> None:
        super().inc(name, labels, by)
        if name == "serve_requests_total":
            self.slab.add(self.worker_id, "requests", by)
            if labels and labels.get("endpoint") == "/v1/recommend":
                self.slab.add(self.worker_id, "recommend", by)
        elif name == "serve_events_total":
            self.slab.add(self.worker_id, "events", by)
        elif name == "serve_errors_total":
            self.slab.add(self.worker_id, "errors", by)
        elif name == "serve_fallback_total":
            self.slab.add(self.worker_id, "fallback", by)

    def observe(self, name, value: float, labels=None) -> None:
        super().observe(name, value, labels)
        if (name == "serve_request_latency_seconds" and labels
                and labels.get("endpoint") == "/v1/recommend"):
            self.slab.observe(self.worker_id, value)


def _worker_stats(app: ServeApp, attached_gen: int) -> Dict[str, Any]:
    return {"pid": os.getpid(),
            "generation": attached_gen,
            "sessions": len(app.sessions),
            "rss_kb": worker_rss_kb(),
            "uss_kb": worker_uss_kb()}


def _retire(retiring: List[AttachedArtifacts], control,
            worker_id: int, force_gc: bool) -> None:
    """Try to detach released generations; ack each successful close."""
    if not retiring:
        return
    if force_gc:
        import gc
        gc.collect()
    for attached in list(retiring):
        if attached.detach():
            retiring.remove(attached)
            try:
                control.send(("detached", worker_id, attached.generation))
            except (BrokenPipeError, OSError):
                pass


def worker_main(spec: WorkerSpec, control) -> None:
    """Entry point of one spawned serving worker.

    Runs a full single-process serve app on an ephemeral port, a control
    loop over the coordinator pipe (install / stats / shutdown), and a
    graceful SIGTERM drain.  Exit code 1 signals thread-sanitizer
    findings (the hot-swap stress test asserts 0 across the fleet).
    """
    # Belt and braces: the coordinator spawns us with a pinned
    # environment, but re-pin before any BLAS-heavy work in case the
    # worker was launched by hand.
    _pin_blas_environ()
    drain = threading.Event()
    signal.signal(signal.SIGTERM, lambda signum, frame: drain.set())
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    slab = MetricsSlab(spec.num_workers, name=spec.slab_name)
    metrics = SlabMetrics(slab, spec.worker_id)
    app = ServeApp(metrics=metrics,
                   session_capacity=spec.session_capacity,
                   max_batch_size=spec.max_batch_size,
                   max_wait_ms=spec.max_wait_ms,
                   default_z=spec.default_z,
                   retrieval=spec.retrieval)
    sanitizer = None
    if spec.thread_sanitizer:
        from ..analysis.concurrency import ThreadSanitizer
        sanitizer = ThreadSanitizer()
        sanitizer.instrument_app(app)

    exit_code = 0
    current: Optional[AttachedArtifacts] = None
    retiring: List[AttachedArtifacts] = []
    try:
        server = ServeServer(app, host=spec.host, port=0).start()
        slab.set_gauge(spec.worker_id, "pid", float(os.getpid()))
        control.send(("ready", spec.worker_id, server.address[1],
                      os.getpid()))
        tick = 0
        while not drain.is_set():
            if control.poll(0.05):
                try:
                    message = control.recv()
                except (EOFError, OSError):
                    break
                kind = message[0]
                if kind == "install":
                    _, segment_name, generation = message
                    attached = AttachedArtifacts(segment_name)
                    if app.registry.adopt(attached.artifacts):
                        if current is not None:
                            retiring.append(current)
                        current = attached
                        slab.set_gauge(spec.worker_id, "generation",
                                       float(generation))
                    else:
                        retiring.append(attached)
                    control.send(("installed", spec.worker_id, generation))
                elif kind == "stats":
                    gen = 0 if current is None else current.generation
                    control.send(("stats", spec.worker_id,
                                  _worker_stats(app, gen)))
                elif kind == "shutdown":
                    break
            tick += 1
            slab.set_gauge(spec.worker_id, "heartbeat", float(tick))
            _retire(retiring, control, spec.worker_id,
                    force_gc=bool(retiring) and tick % 20 == 0)
    finally:
        # Graceful drain: stop accepting, finish in-flight requests,
        # then detach every generation (the registry ref goes last).
        try:
            server.shutdown()
        except OSError:
            pass
        app.registry.clear()
        app.sessions.clear()
        if current is not None:
            retiring.append(current)
        deadline = time.monotonic() + 5.0
        while retiring and time.monotonic() < deadline:
            _retire(retiring, control, spec.worker_id, force_gc=True)
            if retiring:
                time.sleep(0.05)
        if sanitizer is not None:
            sanitizer.restore()
            if sanitizer.findings:
                print(sanitizer.render_report(), flush=True)
                exit_code = 1
        try:
            control.send(("bye", spec.worker_id, exit_code))
        except (BrokenPipeError, OSError):
            pass
        control.close()
    raise SystemExit(exit_code)


@dataclass
class _Worker:
    """Coordinator-side record of one live worker process."""

    worker_id: int
    process: Any
    conn: Any
    port: int
    pid: int
    send_lock: threading.Lock = field(default_factory=threading.Lock)
    stats_replies: "queue.Queue[Dict[str, Any]]" = field(
        default_factory=queue.Queue)
    generation: int = 0
    alive: bool = True
    exit_code: Optional[int] = None

    def send(self, message: Tuple) -> bool:
        with self.send_lock:
            try:
                self.conn.send(message)
                return True
            except (BrokenPipeError, OSError):
                return False


@dataclass
class _Segment:
    """One published generation and the workers still attached to it."""

    checkpoint: ShmCheckpoint
    acks: Set[int] = field(default_factory=set)


class ServeCluster:
    """N-worker serving layer with shared-memory checkpoints.

    Implements the same ``handle(method, path, payload)`` contract as
    :class:`~repro.serve.http.ServeApp`, so :class:`InProcessClient`
    and :class:`ServeServer` wrap a cluster exactly like a single app.
    """

    def __init__(self, num_workers: int, *, quantize: str = "none",
                 retrieval: Optional[RetrievalConfig] = None,
                 session_capacity: int = 10_000, max_batch_size: int = 32,
                 max_wait_ms: float = 2.0, default_z: int = 5,
                 host: str = "127.0.0.1", thread_sanitizer: bool = False,
                 ready_timeout: float = 120.0, event_sink=None) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if quantize not in QUANTIZE_MODES:
            raise ValueError(f"quantize must be one of {QUANTIZE_MODES}, "
                             f"got {quantize!r}")
        self.num_workers = num_workers
        self.quantize = quantize
        #: Optional ``callable(user_id, basket)`` invoked on the
        #: coordinator for every event a worker accepted (status 200) —
        #: the multi-process tee into the online event log, so one log
        #: covers the whole fleet regardless of shard ownership.
        self.event_sink = event_sink
        self.host = host
        self.thread_sanitizer = thread_sanitizer
        self.ready_timeout = ready_timeout
        self._spec_kwargs = dict(session_capacity=session_capacity,
                                 max_batch_size=max_batch_size,
                                 max_wait_ms=max_wait_ms,
                                 default_z=default_z, retrieval=retrieval)
        self.registry = CheckpointRegistry(retrieval=retrieval)
        self.metrics = MetricsRegistry()
        self.slab: Optional[MetricsSlab] = None
        # ``spawn`` on purpose: workers must re-import, not inherit, the
        # coordinator's heap — the artifacts travel via shared memory.
        self._ctx = multiprocessing.get_context("spawn")
        self._lock = threading.Lock()
        self._workers: Dict[int, _Worker] = {}
        self._segments: Dict[int, _Segment] = {}
        self._current_segment: Optional[ShmCheckpoint] = None
        self._closing = False
        self._started = False
        self._local = threading.local()
        self._reaper: Optional[threading.Thread] = None
        self.exit_codes: Dict[int, Optional[int]] = {}

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "ServeCluster":
        with self._lock:
            if self._started:
                return self
            self._started = True
        self.slab = MetricsSlab(self.num_workers)
        for worker_id in range(self.num_workers):
            worker = self._spawn(worker_id)
            with self._lock:
                self._workers[worker_id] = worker
            self._start_listener(worker)
        reaper = threading.Thread(target=self._reap_loop, daemon=True,
                                  name="repro-mp-reaper")
        with self._lock:
            self._reaper = reaper
        reaper.start()
        return self

    def _spawn(self, worker_id: int) -> _Worker:
        spec = WorkerSpec(worker_id=worker_id,
                          num_workers=self.num_workers,
                          slab_name=self.slab.name, host=self.host,
                          thread_sanitizer=self.thread_sanitizer,
                          **self._spec_kwargs)
        parent_conn, child_conn = self._ctx.Pipe()
        # Pin BLAS/OpenMP in the spawn environment (the reliable moment:
        # thread counts are read when the child loads numpy).  daemon=True
        # so a crashed coordinator cannot strand worker processes.
        with _pinned_parent_env(True):
            process = self._ctx.Process(target=worker_main,
                                        args=(spec, child_conn),
                                        name=f"repro-serve-w{worker_id}",
                                        daemon=True)
            process.start()
        child_conn.close()
        deadline = time.monotonic() + self.ready_timeout
        while not parent_conn.poll(0.1):
            if time.monotonic() > deadline or not process.is_alive():
                process.terminate()
                raise RuntimeError(f"serve worker {worker_id} failed to "
                                   f"come up within {self.ready_timeout}s")
        message = parent_conn.recv()
        if message[0] != "ready":
            process.terminate()
            raise RuntimeError(f"serve worker {worker_id} sent "
                               f"{message[0]!r} instead of ready")
        _, _, port, pid = message
        return _Worker(worker_id=worker_id, process=process,
                       conn=parent_conn, port=port, pid=pid)

    def _start_listener(self, worker: _Worker) -> None:
        listener = threading.Thread(target=self._listen, args=(worker,),
                                    daemon=True,
                                    name=f"repro-mp-listen-{worker.worker_id}")
        listener.start()

    def _listen(self, worker: _Worker) -> None:
        """Drain one worker's pipe; the only thread that recv()s it."""
        while True:
            try:
                message = worker.conn.recv()
            except (EOFError, OSError):
                return
            kind = message[0]
            if kind == "detached":
                self._ack_detach(message[1], message[2])
            elif kind == "installed":
                worker.generation = message[2]
            elif kind == "stats":
                worker.stats_replies.put(message[2])
            elif kind == "bye":
                worker.exit_code = message[2]

    def _reap_loop(self) -> None:
        """Detect crashed workers, replace them, resweep segment acks."""
        while True:
            time.sleep(0.2)
            with self._lock:
                if self._closing:
                    return
                dead = [worker for worker in self._workers.values()
                        if worker.alive and not worker.process.is_alive()]
                for worker in dead:
                    worker.alive = False
                    self.exit_codes[worker.worker_id] = \
                        worker.process.exitcode
            for worker in dead:
                self.metrics.inc("serve_worker_restarts_total",
                                 {"worker": str(worker.worker_id)})
                try:
                    replacement = self._spawn(worker.worker_id)
                except RuntimeError:
                    continue
                with self._lock:
                    if self._closing:
                        replacement.process.terminate()
                        return
                    self._workers[worker.worker_id] = replacement
                    current = self._current_segment
                self._start_listener(replacement)
                if current is not None:
                    replacement.send(("install", current.name,
                                      current.generation))
            if dead:
                self._sweep_segments()

    # -- checkpoint publication ----------------------------------------
    def install(self, model, path: Optional[str] = None
                ) -> ServingArtifacts:
        """Build, publish, and broadcast one checkpoint generation."""
        artifacts = self.registry.install(model, path=path)
        checkpoint = publish_artifacts(artifacts, self.quantize)
        with self._lock:
            live = [worker for worker in self._workers.values()
                    if worker.alive]
            self._segments[checkpoint.generation] = _Segment(checkpoint)
            previous = self._current_segment
            if (previous is None
                    or previous.generation < checkpoint.generation):
                self._current_segment = checkpoint
        for worker in live:
            worker.send(("install", checkpoint.name,
                         checkpoint.generation))
        self._sweep_segments()
        return artifacts

    def load_checkpoint(self, path) -> ServingArtifacts:
        from ..io import load_model
        return self.install(load_model(path), path=str(path))

    def current_checkpoint(self) -> Optional[ShmCheckpoint]:
        with self._lock:
            return self._current_segment

    def _ack_detach(self, worker_id: int, generation: int) -> None:
        with self._lock:
            segment = self._segments.get(generation)
            if segment is not None:
                segment.acks.add(worker_id)
        self._sweep_segments()

    def _sweep_segments(self) -> None:
        """Unlink every stale segment all live workers have released."""
        removable: List[_Segment] = []
        with self._lock:
            live_ids = {worker.worker_id
                        for worker in self._workers.values() if worker.alive}
            current = self._current_segment
            for generation in list(self._segments):
                if current is not None and generation >= current.generation:
                    continue
                segment = self._segments[generation]
                if live_ids.issubset(segment.acks):
                    removable.append(self._segments.pop(generation))
        for segment in removable:
            segment.checkpoint.unlink()
            segment.checkpoint.close()

    # -- fleet introspection -------------------------------------------
    def worker_stats(self, worker_id: int,
                     timeout: float = 10.0) -> Optional[Dict[str, Any]]:
        """Round-trip a stats request to one worker (None if it's gone)."""
        with self._lock:
            worker = self._workers.get(worker_id)
        if worker is None or not worker.alive:
            return None
        if not worker.send(("stats",)):
            return None
        try:
            return worker.stats_replies.get(timeout=timeout)
        except queue.Empty:
            return None

    def worker_generations(self) -> List[int]:
        """Per-worker installed generation, straight from the slab."""
        return [] if self.slab is None else self.slab.generations()

    def worker_ports(self) -> List[int]:
        with self._lock:
            return [self._workers[i].port
                    for i in sorted(self._workers)]

    # -- request routing -----------------------------------------------
    def handle(self, method: str, path: str,
               payload: Optional[Dict[str, Any]] = None) -> Response:
        """Route one request; same contract as ``ServeApp.handle``."""
        try:
            if path == "/healthz":
                if method != "GET":
                    raise ServeError(405, "use GET for /healthz")
                return 200, self._healthz(), JSON_TYPE
            if path == "/metrics":
                if method != "GET":
                    raise ServeError(405, "use GET for /metrics")
                return 200, self._render_metrics(), TEXT_TYPE
            if path not in ("/v1/recommend", "/v1/events", "/v1/explain"):
                raise ServeError(404, f"unknown path {path!r}")
            if method != "POST":
                raise ServeError(405, f"use POST for {path}")
            if payload is None or not isinstance(payload, dict):
                raise ServeError(400, "request body must be a JSON object")
            worker_id = partition(_require_int(payload, "user_id"),
                                  self.num_workers)
            status, parsed, ctype = self._forward(worker_id, method, path,
                                                  payload)
            if (path == "/v1/events" and status == 200
                    and self.event_sink is not None):
                # The owning worker validated and applied the event; only
                # accepted events reach the log (mirrors ServeApp._events).
                try:
                    self.event_sink(payload["user_id"],
                                    tuple(payload["basket"]))
                except Exception:  # noqa: BLE001 — the stream must not 500
                    self.metrics.inc("serve_event_sink_errors_total")
            return status, parsed, ctype
        except ServeError as exc:
            self.metrics.inc("serve_router_errors_total",
                             {"endpoint": path})
            return exc.status, {"error": str(exc)}, JSON_TYPE

    def _forward(self, worker_id: int, method: str, path: str,
                 payload: Optional[Dict[str, Any]]) -> Response:
        """Proxy to the owning worker over a thread-local keep-alive
        connection; one reconnect attempt before degrading to 503."""
        with self._lock:
            worker = self._workers.get(worker_id)
            port = None if worker is None or not worker.alive else worker.port
        if port is None:
            self.metrics.inc("serve_router_unavailable_total",
                             {"worker": str(worker_id)})
            return 503, {"error": f"worker {worker_id} unavailable"}, \
                JSON_TYPE
        body = None if payload is None else json.dumps(payload)
        for attempt in (0, 1):
            connection = self._connection(worker_id, port,
                                          fresh=attempt > 0)
            try:
                connection.request(
                    method, path, body=body,
                    headers={"Content-Type": JSON_TYPE} if body else {})
                response = connection.getresponse()
                data = response.read()
                ctype = response.getheader("Content-Type", JSON_TYPE)
                parsed = (json.loads(data) if ctype.startswith(JSON_TYPE)
                          else data.decode("utf-8"))
                self.metrics.inc("serve_router_requests_total",
                                 {"endpoint": path,
                                  "worker": str(worker_id)})
                return response.status, parsed, ctype
            except (OSError, http.client.HTTPException,
                    json.JSONDecodeError):
                self._drop_connection(worker_id)
        self.metrics.inc("serve_router_unavailable_total",
                         {"worker": str(worker_id)})
        return 503, {"error": f"worker {worker_id} unavailable"}, JSON_TYPE

    def _connection(self, worker_id: int, port: int,
                    fresh: bool = False) -> http.client.HTTPConnection:
        cache = getattr(self._local, "connections", None)
        if cache is None:
            cache = self._local.connections = {}
        cached = cache.get(worker_id)
        if cached is not None and cached[0] == port and not fresh:
            return cached[1]
        if cached is not None:
            cached[1].close()
        connection = http.client.HTTPConnection(self.host, port, timeout=30)
        cache[worker_id] = (port, connection)
        return connection

    def _drop_connection(self, worker_id: int) -> None:
        cache = getattr(self._local, "connections", None)
        if cache is not None:
            cached = cache.pop(worker_id, None)
            if cached is not None:
                cached[1].close()

    # -- merged observability ------------------------------------------
    def _healthz(self) -> Dict[str, Any]:
        artifacts = self.registry.current()
        with self._lock:
            workers = [{"worker": worker.worker_id, "pid": worker.pid,
                        "port": worker.port, "alive": worker.alive,
                        "generation": (0 if self.slab is None else
                                       int(self.slab.gauge(
                                           worker.worker_id, "generation")))}
                       for worker in self._workers.values()]
        all_up = all(entry["alive"] for entry in workers)
        return {"status": ("ok" if artifacts is not None and all_up
                           else "degraded"),
                "checkpoint": (None if artifacts is None
                               else artifacts.describe()),
                "quantize": self.quantize,
                "workers": sorted(workers, key=lambda entry: entry["worker"]),
                "num_workers": self.num_workers}

    def _render_metrics(self) -> str:
        """One Prometheus exposition merging every worker's slab row."""
        slab = self.slab
        lines: List[str] = []
        totals = {key: 0.0 for key in
                  ("requests", "recommend", "events", "errors", "fallback")}
        latencies: List[np.ndarray] = []
        with self._lock:
            alive = {worker.worker_id: worker.alive
                     for worker in self._workers.values()}
        for worker_id in range(self.num_workers):
            counters = slab.counters(worker_id)
            for key, value in counters.items():
                totals[key] += value
            lines.append(f'serve_worker_up{{worker="{worker_id}"}} '
                         f'{1 if alive.get(worker_id) else 0}')
            lines.append(f'serve_worker_generation{{worker="{worker_id}"}} '
                         f'{int(slab.gauge(worker_id, "generation"))}')
            lines.append(f'serve_worker_heartbeat{{worker="{worker_id}"}} '
                         f'{int(slab.gauge(worker_id, "heartbeat"))}')
            lines.append(f'serve_worker_requests_total'
                         f'{{worker="{worker_id}"}} '
                         f'{counters["requests"]:.0f}')
            latencies.append(slab.latencies(worker_id))
        for key, value in totals.items():
            lines.append(f'serve_mp_{key}_total {value:.0f}')
        merged = (np.concatenate(latencies) if latencies
                  else np.zeros(0))
        if merged.size:
            for q in (50, 95, 99):
                lines.append(
                    f'serve_mp_recommend_latency_seconds'
                    f'{{quantile="{q / 100}"}} '
                    f'{float(np.percentile(merged, q)):.6f}')
        return "\n".join(lines) + "\n" + self.metrics.render()

    def recommend_percentile(self, q: float) -> float:
        """Merged recommend-latency percentile across all worker rings."""
        rings = [self.slab.latencies(worker_id)
                 for worker_id in range(self.num_workers)]
        merged = np.concatenate(rings) if rings else np.zeros(0)
        return float(np.percentile(merged, q)) if merged.size else 0.0

    # -- shutdown ------------------------------------------------------
    def close(self, timeout: float = 15.0) -> Dict[int, Optional[int]]:
        """Graceful drain: shutdown message, SIGTERM, then escalate.

        Returns the final per-worker exit codes (0 = clean, 1 = the
        worker's thread sanitizer reported findings).
        """
        with self._lock:
            if self._closing:
                return dict(self.exit_codes)
            self._closing = True
            workers = list(self._workers.values())
            segments = [segment.checkpoint
                        for segment in self._segments.values()]
            self._segments.clear()
            self._current_segment = None
        for worker in workers:
            if not worker.send(("shutdown",)):
                try:
                    worker.process.terminate()
                except (OSError, ValueError):
                    pass
        deadline = time.monotonic() + timeout
        for worker in workers:
            worker.process.join(timeout=max(0.1,
                                            deadline - time.monotonic()))
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=5.0)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=5.0)
            self.exit_codes[worker.worker_id] = worker.process.exitcode
            worker.alive = False
            try:
                worker.conn.close()
            except OSError:
                pass
        for checkpoint in segments:
            checkpoint.unlink()
            checkpoint.close()
        if self.slab is not None:
            self.slab.unlink()
            self.slab.close()
        self.registry.clear()
        return dict(self.exit_codes)
