"""Serving observability: thread-safe counters, gauges and histograms.

A single :class:`MetricsRegistry` instance backs the whole serving stack.
Counters are monotonically increasing floats; gauges are last-write-wins
floats (update lag, drift scores — anything that can move both ways);
histograms keep a bounded ring buffer of recent observations (enough for
stable p50/p95/p99) plus exact running ``count``/``sum``.
:meth:`MetricsRegistry.render` exports everything in the Prometheus text
exposition format, which is what the ``/metrics`` endpoint returns.

Everything here is stdlib + numpy; one registry lock serializes updates
(observations are tiny — a dict lookup and an array write — so a single
lock comfortably outpaces the HTTP layer)."""

from __future__ import annotations

import threading
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

#: Ring-buffer size per histogram: large enough that p99 over a busy
#: window is stable, small enough to stay cache-resident.
DEFAULT_WINDOW = 4096

Labels = Optional[Dict[str, str]]


def _series_key(name: str, labels: Labels) -> str:
    """Prometheus-style series identity, e.g. ``name{a="x",b="y"}``."""
    if not labels:
        return name
    inner = ",".join(f'{key}="{value}"'
                     for key, value in sorted(labels.items()))
    return f"{name}{{{inner}}}"


class _Histogram:
    """Bounded sample window with exact running count and sum."""

    __slots__ = ("window", "samples", "count", "total")

    def __init__(self, window: int = DEFAULT_WINDOW) -> None:
        self.window = window
        self.samples = np.zeros(window, dtype=np.float64)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.samples[self.count % self.window] = value
        self.count += 1
        self.total += value

    def filled(self) -> np.ndarray:
        return self.samples[:min(self.count, self.window)]

    def percentile(self, q: float) -> float:
        filled = self.filled()
        if filled.size == 0:
            return float("nan")
        return float(np.percentile(filled, q))


class MetricsRegistry:
    """Named counters + latency histograms with Prometheus text export."""

    def __init__(self, window: int = DEFAULT_WINDOW) -> None:
        self._lock = threading.Lock()
        self._window = window
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, _Histogram] = {}
        # Base-name ordering for rendering (# TYPE headers appear once).
        self._counter_names: Dict[str, None] = {}
        self._gauge_names: Dict[str, None] = {}
        self._histogram_names: Dict[str, None] = {}

    # -- updates ---------------------------------------------------------
    def inc(self, name: str, labels: Labels = None, by: float = 1.0) -> None:
        key = _series_key(name, labels)
        with self._lock:
            self._counter_names.setdefault(name)
            self._counters[key] = self._counters.get(key, 0.0) + by

    def set_gauge(self, name: str, value: float,
                  labels: Labels = None) -> None:
        """Last-write-wins gauge (drift scores, update lag, window sizes)."""
        key = _series_key(name, labels)
        with self._lock:
            self._gauge_names.setdefault(name)
            self._gauges[key] = float(value)

    def observe(self, name: str, value: float, labels: Labels = None) -> None:
        key = _series_key(name, labels)
        with self._lock:
            self._histogram_names.setdefault(name)
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = _Histogram(self._window)
            hist.observe(float(value))

    # -- reads -----------------------------------------------------------
    def counter_value(self, name: str, labels: Labels = None) -> float:
        with self._lock:
            return self._counters.get(_series_key(name, labels), 0.0)

    def gauge_value(self, name: str, labels: Labels = None,
                    default: float = 0.0) -> float:
        with self._lock:
            return self._gauges.get(_series_key(name, labels), default)

    def percentile(self, name: str, q: float, labels: Labels = None) -> float:
        with self._lock:
            hist = self._histograms.get(_series_key(name, labels))
            return float("nan") if hist is None else hist.percentile(q)

    def percentiles(self, name: str, qs: Iterable[float] = (50, 95, 99),
                    labels: Labels = None) -> Dict[str, float]:
        """``{"p50": ..., "p95": ..., "p99": ...}`` for one series."""
        return {f"p{q:g}": self.percentile(name, q, labels) for q in qs}

    def observation_count(self, name: str, labels: Labels = None) -> int:
        with self._lock:
            hist = self._histograms.get(_series_key(name, labels))
            return 0 if hist is None else hist.count

    # -- export ----------------------------------------------------------
    def render(self) -> str:
        """Prometheus text: counters, gauges, then histogram summaries."""
        with self._lock:
            lines = []
            for name in self._counter_names:
                lines.append(f"# TYPE {name} counter")
                for key, value in sorted(self._counters.items()):
                    if key == name or key.startswith(name + "{"):
                        lines.append(f"{key} {value:g}")
            for name in self._gauge_names:
                lines.append(f"# TYPE {name} gauge")
                for key, value in sorted(self._gauges.items()):
                    if key == name or key.startswith(name + "{"):
                        lines.append(f"{key} {value:g}")
            for name in self._histogram_names:
                lines.append(f"# TYPE {name} summary")
                for key, hist in sorted(self._histograms.items()):
                    if not (key == name or key.startswith(name + "{")):
                        continue
                    base, brace, labels = key.partition("{")
                    for q in (0.5, 0.95, 0.99):
                        if brace:
                            series = (f'{base}{{quantile="{q}",'
                                      f"{labels}")
                        else:
                            series = f'{base}{{quantile="{q}"}}'
                        lines.append(f"{series} {hist.percentile(100 * q):g}")
                    suffix = brace + labels if brace else ""
                    lines.append(f"{base}_count{suffix} {hist.count}")
                    lines.append(f"{base}_sum{suffix} {hist.total:g}")
            return "\n".join(lines) + "\n"
