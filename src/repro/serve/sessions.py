"""Per-user incremental session state with LRU eviction.

The online counterpart of :func:`repro.data.batching.pad_samples` +
a full RNN unroll: a :class:`SessionState` holds a user's event history
*and* the recurrent state that history induces, so feeding one new event
advances the GRU/LSTM hidden state in O(1) instead of re-running the whole
sequence.  The step math below mirrors the fused kernels in
:mod:`repro.nn.fused` operation-for-operation (same associativity, same
:func:`repro.nn.tensor._stable_sigmoid`), and the full-replay fallback
(:meth:`SessionState.replay`) walks the same step functions — so
incremental and replayed states are **bit-identical by construction**, a
contract the tests assert with exact equality.

The ε keep-rule of eq. 10 ("skip steps whose causally-filtered basket is
empty, carrying the state through") is the ``keep`` argument of the step
functions: ``keep=False`` returns the previous state object unchanged,
exactly like the fused kernels' 0/1 ``keep`` mask.

Windowing: models score at most ``max_history`` trailing steps (matching
offline ``pad_samples`` truncation).  Once a session exceeds the window,
appending an event drops the oldest one and replays the window — O(W)
for that event, still independent of the session's lifetime length.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..nn.tensor import _stable_sigmoid
from ..retrieval.towers import take_rows

#: Event cap for sessions accumulated while no checkpoint is loaded
#: (degraded mode): we cannot know the model's window yet, so keep a
#: generous tail and re-window when artifacts arrive.
DEGRADED_MAX_EVENTS = 256

Basket = Tuple[int, ...]


def gru_step(x: np.ndarray, h: np.ndarray, w_ih: np.ndarray,
             w_hh: np.ndarray, b_ih: np.ndarray, b_hh: np.ndarray,
             keep: bool = True) -> np.ndarray:
    """One inference-only GRU step, ``(1, I) x (1, H) -> (1, H)``.

    Identical operation sequence to :func:`repro.nn.fused.fused_gru_step`'s
    forward; ``keep=False`` freezes the state (the ε skip rule).
    """
    if not keep:
        return h
    hidden = w_hh.shape[1]
    gates_x = x @ w_ih.T + b_ih
    gates_h = h @ w_hh.T + b_hh
    r = _stable_sigmoid(gates_x[:, :hidden] + gates_h[:, :hidden])
    z = _stable_sigmoid(gates_x[:, hidden:2 * hidden]
                        + gates_h[:, hidden:2 * hidden])
    n = np.tanh(gates_x[:, 2 * hidden:] + r * gates_h[:, 2 * hidden:])
    return (1.0 - z) * n + z * h


def lstm_step(x: np.ndarray, h: np.ndarray, c: np.ndarray,
              w_ih: np.ndarray, w_hh: np.ndarray, bias: np.ndarray,
              keep: bool = True) -> Tuple[np.ndarray, np.ndarray]:
    """One inference-only LSTM step returning ``(h', c')``.

    Mirrors :func:`repro.nn.fused.fused_lstm_step`'s forward exactly.
    """
    if not keep:
        return h, c
    hidden = w_hh.shape[1]
    gates = x @ w_ih.T + h @ w_hh.T + bias
    i = _stable_sigmoid(gates[:, :hidden])
    f = _stable_sigmoid(gates[:, hidden:2 * hidden])
    g = np.tanh(gates[:, 2 * hidden:3 * hidden])
    o = _stable_sigmoid(gates[:, 3 * hidden:])
    c_new = f * c + i * g
    return o * np.tanh(c_new), c_new


@dataclass
class RecurrentServingParams:
    """Frozen weight views + input tables driving incremental updates.

    Built once per checkpoint by the registry; numpy arrays are views into
    the loaded model's parameters (the model is frozen while serving — a
    hot swap replaces the whole artifact bundle, never mutates it).
    """

    cell_type: str                      # "gru" | "lstm"
    input_table: np.ndarray             # (V+1, d) per-item input embeddings
    w_ih: np.ndarray
    w_hh: np.ndarray
    b_ih: Optional[np.ndarray]          # gru only
    b_hh: Optional[np.ndarray]          # gru only
    bias: Optional[np.ndarray]          # lstm only
    init_h: Callable[[int], np.ndarray]  # user id -> (1, H) initial state
    max_history: int
    track_states: bool = False          # retain per-step states (attention)

    @property
    def hidden_size(self) -> int:
        return self.w_hh.shape[1]

    def initial_state(self, user_id: int
                      ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        h0 = self.init_h(user_id)
        if self.cell_type == "lstm":
            return h0, np.zeros_like(h0)
        return h0, None

    def embed_basket(self, basket: Sequence[int]) -> np.ndarray:
        """Basket-summed input embedding, shape ``(1, d)``.

        ``take_rows`` keeps the dense path byte-identical while letting
        quantized input tables dequantize only the gathered rows.
        """
        return take_rows(self.input_table,
                         list(basket)).sum(axis=0)[None, :]

    def step(self, basket: Sequence[int], h: np.ndarray,
             c: Optional[np.ndarray], keep: bool = True
             ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        x = self.embed_basket(basket)
        if self.cell_type == "lstm":
            return lstm_step(x, h, c, self.w_ih, self.w_hh, self.bias,
                             keep=keep)
        return gru_step(x, h, self.w_ih, self.w_hh, self.b_ih, self.b_hh,
                        keep=keep), None


@dataclass
class ScoreView:
    """Immutable snapshot of a session handed to the scorer/batcher.

    Snapshotting under the store lock decouples scoring from concurrent
    ``/v1/events`` appends to the same session.
    """

    user_id: int
    events: Tuple[Basket, ...]
    states: Optional[np.ndarray]        # (T, H) per-step hidden states
    last: Optional[np.ndarray]          # (1, H) current hidden state

    @property
    def steps(self) -> int:
        return len(self.events)


@dataclass
class SessionState:
    """One user's live session: events + incremental recurrent state."""

    user_id: int
    events: List[Basket] = field(default_factory=list)
    h: Optional[np.ndarray] = None
    c: Optional[np.ndarray] = None
    states: List[np.ndarray] = field(default_factory=list)
    generation: int = -1

    # -- state evolution -------------------------------------------------
    def _advance(self, params: RecurrentServingParams,
                 basket: Basket) -> None:
        if self.h is None:
            self.h, self.c = params.initial_state(self.user_id)
        self.h, self.c = params.step(basket, self.h, self.c)
        if params.track_states:
            self.states.append(self.h[0])

    def replay(self, params: RecurrentServingParams) -> None:
        """Rebuild the recurrent state from the stored events.

        Walks the exact same step functions the incremental path uses, so
        the result is bit-identical to having fed the events one by one.
        """
        self.h, self.c = params.initial_state(self.user_id)
        self.states = []
        for basket in self.events:
            self._advance(params, basket)

    def append(self, basket: Sequence[int],
               params: Optional[RecurrentServingParams]) -> None:
        """Fold one new event in: O(1) inside the window, O(W) past it."""
        self.events.append(tuple(int(item) for item in basket))
        if params is None:
            # Degraded mode (no checkpoint): keep raw events only.
            if len(self.events) > DEGRADED_MAX_EVENTS:
                del self.events[0]
            return
        if len(self.events) > params.max_history:
            del self.events[:len(self.events) - params.max_history]
            self.replay(params)
        else:
            self._advance(params, basket=self.events[-1])

    # -- snapshots ---------------------------------------------------------
    def view(self) -> ScoreView:
        states = None
        if self.states:
            states = np.asarray(self.states)
        last = None if self.h is None else self.h.copy()
        return ScoreView(user_id=self.user_id, events=tuple(self.events),
                         states=states, last=last)


class SessionStore:
    """Thread-safe LRU map ``user_id -> SessionState``.

    Evictions are counted (``evictions`` attribute and, when a metrics
    registry is attached, the ``serve_sessions_evicted_total`` counter) —
    an evicted user's recurrent state silently restarts from scratch on
    their next event, which downstream consumers (the online trainer's
    resync logic, capacity dashboards) need to see rather than infer.
    """

    def __init__(self, capacity: int = 10_000, metrics=None) -> None:
        if capacity < 1:
            raise ValueError("session store capacity must be positive")
        self.capacity = capacity
        self.metrics = metrics
        self._lock = threading.RLock()
        self._sessions: "OrderedDict[int, SessionState]" = OrderedDict()
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def __contains__(self, user_id: int) -> bool:
        with self._lock:
            return user_id in self._sessions

    def _sync(self, session: SessionState, artifacts) -> None:
        """Adopt a newly-swapped checkpoint: re-window + replay lazily.

        Sessions survive hot swaps; the first touch after a swap rebuilds
        the recurrent state from the stored events under the new weights.
        """
        if artifacts is None or session.generation == artifacts.generation:
            return
        params = artifacts.recurrent
        if params is not None:
            if len(session.events) > params.max_history:
                del session.events[:len(session.events) - params.max_history]
            session.replay(params)
        else:
            session.h = session.c = None
            session.states = []
        session.generation = artifacts.generation

    def append_event(self, user_id: int, basket: Sequence[int],
                     artifacts=None) -> SessionState:
        """Record one event for ``user_id``, advancing recurrent state."""
        evicted = False
        with self._lock:
            session = self._sessions.get(user_id)
            if session is None:
                session = SessionState(user_id=user_id)
                if artifacts is not None:
                    session.generation = artifacts.generation
                self._sessions[user_id] = session
                if len(self._sessions) > self.capacity:
                    self._sessions.popitem(last=False)
                    self.evictions += 1
                    evicted = True
            else:
                self._sync(session, artifacts)
            self._sessions.move_to_end(user_id)
            session.append(
                basket,
                None if artifacts is None else artifacts.recurrent)
        # Counted outside the store lock: the metrics registry has its own
        # lock and every serving lock stays a leaf in the global order.
        if evicted and self.metrics is not None:
            self.metrics.inc("serve_sessions_evicted_total")
        return session

    def view(self, user_id: int, artifacts=None) -> Optional[ScoreView]:
        """Scoring snapshot of a stored session (None when absent)."""
        with self._lock:
            session = self._sessions.get(user_id)
            if session is None:
                return None
            self._sync(session, artifacts)
            self._sessions.move_to_end(user_id)
            return session.view()

    def ephemeral_view(self, user_id: int,
                       history: Sequence[Sequence[int]],
                       artifacts) -> ScoreView:
        """One-shot session for an explicit request history (not stored)."""
        session = SessionState(user_id=user_id)
        if artifacts is not None:
            session.generation = artifacts.generation
        params = None if artifacts is None else artifacts.recurrent
        for basket in history:
            session.append(basket, params)
        return session.view()

    def drop(self, user_id: int) -> bool:
        with self._lock:
            return self._sessions.pop(user_id, None) is not None

    def clear(self) -> None:
        with self._lock:
            self._sessions.clear()
