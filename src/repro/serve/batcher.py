"""Micro-batching scheduler: coalesce concurrent scoring requests.

Full-catalog scoring is GEMM-bound, and a ``(B, ·)`` GEMM costs far less
than ``B`` separate ``(1, ·)`` GEMMs — so concurrent requests are worth
coalescing.  A single worker thread drains a queue: it closes a batch when
``max_batch_size`` requests are waiting or when the **oldest** request has
waited ``max_wait_ms`` (the knob bounding added latency); under no
concurrency a lone request therefore waits at most ``max_wait_ms``.

The batcher is generic: it moves opaque payloads to a caller-supplied
``score_many(payloads) -> results`` function (the serve app's, which groups
payloads by artifact generation so a hot swap mid-batch scores each
request against the checkpoint it was admitted under).  Failures propagate
to the submitting thread, never to unrelated requests in the same batch.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, List, Optional, Sequence

from .metrics import MetricsRegistry


class _Pending:
    """One in-flight request: payload + completion event + result slot."""

    __slots__ = ("payload", "event", "result", "error", "enqueued_at")

    def __init__(self, payload: Any) -> None:
        self.payload = payload
        self.event = threading.Event()
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.enqueued_at = time.perf_counter()


class MicroBatcher:
    """Batches calls to ``score_many`` across concurrent submitters."""

    def __init__(self, score_many: Callable[[Sequence[Any]], Sequence[Any]],
                 max_batch_size: int = 32, max_wait_ms: float = 2.0,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be positive")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        self._score_many = score_many
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_ms / 1000.0
        self.metrics = metrics
        self._lock = threading.Lock()
        self._nonempty = threading.Condition(self._lock)
        self._queue: List[_Pending] = []
        self._closed = False
        self._worker = threading.Thread(target=self._run, daemon=True,
                                        name="repro-serve-batcher")
        self._worker.start()

    # -- submitter side --------------------------------------------------
    def submit(self, payload: Any) -> Any:
        """Enqueue one payload and block until its result is ready."""
        pending = _Pending(payload)
        with self._nonempty:
            if self._closed:
                raise RuntimeError("MicroBatcher is closed")
            self._queue.append(pending)
            self._nonempty.notify()
        pending.event.wait()
        if pending.error is not None:
            raise pending.error
        return pending.result

    def close(self, timeout: float = 5.0) -> None:
        """Stop the worker; every pending request is scored or failed.

        Deterministic shutdown, safe to call repeatedly and from several
        threads: mark closed and wake *all* condition waiters (the worker
        may be lingering, and concurrent closers must not swallow each
        other's wakeup), join the worker with a bounded timeout, then fail
        any request still queued — a wedged or timed-out worker must not
        leave submitters blocked on their completion event forever.
        """
        with self._nonempty:
            self._closed = True
            self._nonempty.notify_all()
        self._worker.join(timeout=timeout)
        with self._nonempty:
            leftover, self._queue = self._queue, []
        for pending in leftover:
            pending.error = RuntimeError(
                "MicroBatcher closed before the request was scored")
            pending.event.set()

    # -- worker side -----------------------------------------------------
    def _take_batch(self) -> Optional[List[_Pending]]:
        """Wait for work; return a batch, or None when closed and drained."""
        with self._nonempty:
            while not self._queue and not self._closed:
                self._nonempty.wait()
            if not self._queue:
                return None  # closed and drained
            # Linger (bounded by the oldest request's deadline) to let
            # concurrent submitters join this batch.
            deadline = self._queue[0].enqueued_at + self.max_wait_s
            while (len(self._queue) < self.max_batch_size
                   and not self._closed):
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                self._nonempty.wait(timeout=remaining)
            batch = self._queue[:self.max_batch_size]
            del self._queue[:len(batch)]
            return batch

    def _run(self) -> None:
        while True:
            batch = self._take_batch()
            if batch is None:
                return
            now = time.perf_counter()
            if self.metrics is not None:
                self.metrics.observe("serve_batch_size", len(batch))
                for pending in batch:
                    self.metrics.observe("serve_batch_wait_seconds",
                                         now - pending.enqueued_at)
            try:
                results = self._score_many([p.payload for p in batch])
                if len(results) != len(batch):
                    raise RuntimeError(
                        f"score_many returned {len(results)} results for "
                        f"{len(batch)} payloads")
                for pending, result in zip(batch, results):
                    pending.result = result
            except BaseException as exc:  # noqa: BLE001 — forwarded, not hidden
                for pending in batch:
                    pending.error = exc
            finally:
                for pending in batch:
                    pending.event.set()
