"""Checkpoint registry: load ``.npz`` checkpoints, precompute serving
artifacts, hot-swap behind a lock.

A checkpoint (written by :func:`repro.io.save_model`) is turned into a
frozen :class:`ServingArtifacts` bundle once, at install time:

* the **item-level causal matrix** Ŵ (eq. 9, via the fingerprint-cached
  :meth:`Causer.item_causal_matrix`) and its **ε-gated** counterpart
  ``W ⊙ 1(W > ε)`` — the per-request scorer then never re-projects K×K→N×N,
* **hard cluster assignments** per item,
* the **input embedding table** feeding incremental RNN updates
  (:class:`repro.serve.sessions.RecurrentServingParams`),
* the output item-embedding table + bias the final dot-product reads.

Artifacts are immutable once published.  :meth:`CheckpointRegistry.install`
swaps the current bundle atomically under a lock and bumps a monotonically
increasing **generation**; in-flight requests keep scoring against the
artifact object they already hold, and session states lazily rebuild on
their first touch after the swap (see :meth:`SessionStore._sync`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from ..core.causer import Causer
from ..io import PathLike, load_model
from ..models.gru4rec import GRU4Rec
from ..nn import no_grad
from ..retrieval import IVFIndex, ItemTower, RetrievalConfig, build_item_tower
from .sessions import RecurrentServingParams


@dataclass(frozen=True)
class RetrievalArtifact:
    """Frozen retrieval stage for one generation: item tower + IVF index.

    Built inside :func:`build_artifacts`, so the index, the embedding
    tables it was trained on, and the bundle's generation are one
    immutable object — a hot swap can never pair a stale index with new
    embeddings (the stress tests assert this under the thread sanitizer).
    """

    config: RetrievalConfig
    tower: ItemTower
    index: IVFIndex
    generation: int

    def describe(self) -> Dict[str, Any]:
        return {"mode": self.config.mode,
                "scorer": self.config.scorer,
                "n_clusters": self.index.n_clusters,
                "shortlist": self.config.shortlist,
                "nprobe": self.config.nprobe}


def build_retrieval(artifacts: "ServingArtifacts",
                    config: RetrievalConfig) -> Optional[RetrievalArtifact]:
    """IVF retrieval bundle for one frozen artifact set (None for replay)."""
    tower = build_item_tower(artifacts)
    if tower is None:
        return None
    index = IVFIndex.build(tower, n_clusters=config.n_clusters,
                           scorer=config.scorer, seed=config.seed,
                           iters=config.kmeans_iters,
                           workers=config.workers)
    return RetrievalArtifact(config=config, tower=tower, index=index,
                             generation=artifacts.generation)


@dataclass
class ServingArtifacts:
    """Everything a scorer needs, derived once per installed checkpoint."""

    generation: int
    path: Optional[str]
    model: Any
    model_class: str
    num_users: int
    num_items: int
    max_history: int
    #: Incremental-update parameters; ``None`` means the scorer replays the
    #: event history through ``model.score_samples`` (the offline path).
    recurrent: Optional[RecurrentServingParams] = None
    #: ``"incremental"`` or ``"replay"`` — which scorer handles this model.
    mode: str = "replay"
    #: Frozen retrieval stage (item tower + IVF index), built when the
    #: registry has a retrieval config in ``ivf`` mode; ``None`` otherwise
    #: (serving scores the full catalog exactly).
    retrieval: Optional[RetrievalArtifact] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def supports_explain(self) -> bool:
        return self.model_class == "Causer"

    def describe(self) -> Dict[str, Any]:
        """JSON-safe summary for ``/healthz``."""
        return {"generation": self.generation,
                "path": self.path,
                "model_class": self.model_class,
                "mode": self.mode,
                "num_items": self.num_items,
                "max_history": self.max_history,
                "retrieval": (None if self.retrieval is None
                              else self.retrieval.describe())}


@dataclass
class CausalServingArtifacts(ServingArtifacts):
    """Causer-specific precompute: frozen eq. 10 ingredients."""

    item_matrix: Optional[np.ndarray] = None      # Ŵ, (V+1, V+1), read-only
    gated_matrix: Optional[np.ndarray] = None     # Ŵ ⊙ 1(Ŵ > ε)
    hard_clusters: Optional[np.ndarray] = None    # (V+1,) argmax assignment
    attention_proj: Optional[np.ndarray] = None   # A, None in (-att) mode
    adapt_weight: Optional[np.ndarray] = None     # V, (d_e, h)
    output_table: Optional[np.ndarray] = None     # (V+1, d_e)
    output_bias: Optional[np.ndarray] = None      # (V+1,)
    use_causal: bool = True
    epsilon: float = 0.0


@dataclass
class GRUServingArtifacts(ServingArtifacts):
    """GRU4Rec head: projection + output table for the final dot product."""

    project_weight: Optional[np.ndarray] = None
    project_bias: Optional[np.ndarray] = None
    output_table: Optional[np.ndarray] = None
    output_bias: Optional[np.ndarray] = None


@dataclass(frozen=True)
class TanhUserInit:
    """Causer's learned initial state ``tanh(u Wᵀ + b)`` per user id.

    A module-level callable (not a closure) so the whole
    :class:`RecurrentServingParams` bundle pickles — the multi-process
    serving layer ships artifacts through shared memory.
    """

    user_table: np.ndarray
    init_w: np.ndarray
    init_b: np.ndarray
    num_users: int

    def __call__(self, user_id: int) -> np.ndarray:
        u = self.user_table[user_id % self.num_users][None, :]
        return np.tanh(u @ self.init_w.T + self.init_b)


@dataclass(frozen=True)
class ZeroInit:
    """Session-only models start every user from the zero state."""

    hidden: int

    def __call__(self, user_id: int) -> np.ndarray:
        return np.zeros((1, self.hidden))


def _causer_recurrent(model: Causer) -> RecurrentServingParams:
    """Incremental-update params mirroring ``Causer._history_states``."""
    with no_grad(model):
        # ``encode() + weight`` materializes a fresh tensor already — a
        # further ``.copy()`` would only double peak RSS during install.
        input_table = (model.clusters.encode()
                       + model.item_embedding.weight).data
    cell = model.rnn.cell
    init_h = TanhUserInit(user_table=model.user_embedding.weight.data,
                          init_w=model.user_init.weight.data,
                          init_b=model.user_init.bias.data,
                          num_users=max(model.num_users, 1))
    if model.config.cell_type == "lstm":
        return RecurrentServingParams(
            cell_type="lstm", input_table=input_table,
            w_ih=cell.w_ih.data, w_hh=cell.w_hh.data,
            b_ih=None, b_hh=None, bias=cell.bias.data,
            init_h=init_h, max_history=model.config.max_history,
            track_states=True)
    return RecurrentServingParams(
        cell_type="gru", input_table=input_table,
        w_ih=cell.w_ih.data, w_hh=cell.w_hh.data,
        b_ih=cell.b_ih.data, b_hh=cell.b_hh.data, bias=None,
        init_h=init_h, max_history=model.config.max_history,
        track_states=True)


def _gru4rec_recurrent(model: GRU4Rec) -> RecurrentServingParams:
    cell = model.rnn.cell
    return RecurrentServingParams(
        cell_type="gru", input_table=model.item_embedding.weight.data,
        w_ih=cell.w_ih.data, w_hh=cell.w_hh.data,
        b_ih=cell.b_ih.data, b_hh=cell.b_hh.data, bias=None,
        init_h=ZeroInit(hidden=model.config.hidden_dim),
        max_history=model.config.max_history,
        track_states=False)


def build_artifacts(model, generation: int, path: Optional[str] = None,
                    retrieval: Optional[RetrievalConfig] = None
                    ) -> ServingArtifacts:
    """Precompute the frozen serving bundle for one loaded model.

    ``type() is`` dispatch on purpose: subclasses (e.g. ``DynamicCauser``'s
    segment-dependent causal matrix) do not satisfy the frozen-artifact
    assumptions and fall back to the replay scorer.

    With a ``retrieval`` config in ``ivf`` mode the bundle also carries a
    freshly-built :class:`RetrievalArtifact` (rebuilt on every install, so
    the index always matches this generation's embedding tables).
    """
    model.eval()
    common = dict(generation=generation, path=path, model=model,
                  model_class=type(model).__name__,
                  num_users=model.num_users, num_items=model.num_items,
                  max_history=model.config.max_history)
    if type(model) is Causer and model.config.filtering_mode == "shared":
        cfg = model.config
        item_matrix = model.item_causal_matrix()
        gated = np.where(item_matrix > cfg.epsilon, item_matrix, 0.0)
        gated.setflags(write=False)
        artifacts: ServingArtifacts = CausalServingArtifacts(
            mode="incremental", recurrent=_causer_recurrent(model),
            item_matrix=item_matrix, gated_matrix=gated,
            hard_clusters=model.clusters.hard_assignments(),
            attention_proj=(model.attention.proj.data
                            if cfg.use_attention else None),
            adapt_weight=model.adapt.weight.data,
            output_table=model.output_embedding.weight.data,
            output_bias=model.output_bias.data,
            use_causal=cfg.use_causal, epsilon=cfg.epsilon, **common)
    elif type(model) is GRU4Rec:
        artifacts = GRUServingArtifacts(
            mode="incremental", recurrent=_gru4rec_recurrent(model),
            project_weight=model.project.weight.data,
            project_bias=model.project.bias.data,
            output_table=model.output_embedding.weight.data,
            output_bias=model.output_bias.data, **common)
    else:
        # Everything else (attention models, factorization baselines,
        # strict / cluster-filtered Causer, Causer subclasses) replays
        # through the model's own batch scorer — trivially identical to
        # offline scoring.
        artifacts = ServingArtifacts(mode="replay", **common)
    if retrieval is not None and retrieval.mode == "ivf":
        artifacts.retrieval = build_retrieval(artifacts, retrieval)
    return artifacts


class CheckpointRegistry:
    """Holds the current serving bundle; ``install`` hot-swaps it.

    With a ``retrieval`` config the registry also (re)builds the IVF
    retrieval artifact on every install — the index rides inside the
    generation-counted bundle, so readers can never observe a
    mixed-generation (index, embedding) pair.
    """

    def __init__(self,
                 retrieval: Optional[RetrievalConfig] = None) -> None:
        self._lock = threading.Lock()
        self._current: Optional[ServingArtifacts] = None
        self._generation = 0
        self.retrieval = retrieval

    def load(self, path: PathLike) -> ServingArtifacts:
        """Load a checkpoint file and make it the live bundle."""
        model = load_model(path)
        return self.install(model, path=str(path))

    def install(self, model, path: Optional[str] = None) -> ServingArtifacts:
        """Publish ``model`` (already in memory) as the live bundle.

        Artifact precompute runs outside the lock; only the pointer swap is
        serialized, so a hot swap never blocks concurrent ``current()``.
        """
        with self._lock:
            self._generation += 1
            generation = self._generation
        artifacts = build_artifacts(model, generation, path=path,
                                    retrieval=self.retrieval)
        with self._lock:
            # A concurrent install may have published a newer generation
            # while we precomputed; never roll the registry backwards.
            if (self._current is None
                    or self._current.generation < generation):
                self._current = artifacts
        return artifacts

    def adopt(self, artifacts: ServingArtifacts) -> bool:
        """Install a pre-built bundle at its recorded generation.

        The multi-process attach path: a worker receives artifacts the
        coordinator already precomputed (and numbered) and publishes them
        as-is — no rebuild, no retrieval re-index, no generation bump.
        Returns ``False`` when the registry already holds the same or a
        newer generation (the never-roll-backwards rule of ``install``).
        """
        with self._lock:
            if (self._current is not None
                    and self._current.generation >= artifacts.generation):
                return False
            self._current = artifacts
            if self._generation < artifacts.generation:
                self._generation = artifacts.generation
            return True

    def current(self) -> Optional[ServingArtifacts]:
        with self._lock:
            return self._current

    def clear(self) -> None:
        """Drop the live bundle (serving degrades to the popularity path)."""
        with self._lock:
            self._current = None
