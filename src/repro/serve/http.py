"""The serving application and its HTTP skin.

:class:`ServeApp` is the transport-agnostic core: ``handle(method, path,
payload)`` implements every endpoint against the checkpoint registry, the
session store and the micro-batcher, and returns ``(status, body,
content_type)``.  Two transports wrap it:

* :class:`InProcessClient` — calls ``handle`` directly (with a JSON
  round-trip so payloads and responses are provably serializable); this is
  what the tests and benchmarks use, no sockets involved.
* :class:`ServeServer` — a stdlib ``ThreadingHTTPServer`` speaking the
  same routes over real HTTP for ``python -m repro serve``.

Endpoints::

    POST /v1/recommend  {"user_id": int, "z"?: int, "history"?: [[int]]}
    POST /v1/events     {"user_id": int, "basket": [int]}
    POST /v1/explain    {"user_id": int, "target_item": int, "top"?: int,
                         "history"?: [[int]]}
    GET  /healthz
    GET  /metrics       (Prometheus text format)

With no checkpoint installed (or an empty session history) ``/v1/recommend``
degrades gracefully to an observed-popularity ranking and labels the
response ``"source": "popularity"``.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..models.base import rank_top_z
from ..retrieval import RetrievalConfig, rerank_top_z, user_vector
from .batcher import MicroBatcher
from .metrics import MetricsRegistry
from .registry import CheckpointRegistry, ServingArtifacts
from .scoring import score_views, top_causal_edges
from .sessions import SessionStore

JSON_TYPE = "application/json"
TEXT_TYPE = "text/plain; version=0.0.4"

Response = Tuple[int, Any, str]


class ServeError(Exception):
    """Client-visible failure with an HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def _require_int(payload: Dict[str, Any], key: str) -> int:
    value = payload.get(key)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ServeError(400, f"field {key!r} must be an integer")
    return value


def _parse_basket(value: Any, num_items: Optional[int]) -> Tuple[int, ...]:
    if not isinstance(value, (list, tuple)) or not value:
        raise ServeError(400, "basket must be a non-empty list of item ids")
    basket: List[int] = []
    for item in value:
        if isinstance(item, bool) or not isinstance(item, int) or item < 1:
            raise ServeError(400, f"invalid item id {item!r}: item ids are "
                                  f"integers >= 1")
        if num_items is not None and item > num_items:
            raise ServeError(400, f"item id {item} exceeds the loaded "
                                  f"catalog (num_items={num_items})")
        basket.append(item)
    return tuple(basket)


def _parse_history(value: Any, num_items: Optional[int]
                   ) -> List[Tuple[int, ...]]:
    if not isinstance(value, (list, tuple)):
        raise ServeError(400, "history must be a list of baskets")
    return [_parse_basket(basket, num_items) for basket in value]


class ServeApp:
    """Registry + sessions + batcher behind a route table."""

    def __init__(self, registry: Optional[CheckpointRegistry] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 session_capacity: int = 10_000,
                 max_batch_size: int = 32, max_wait_ms: float = 2.0,
                 default_z: int = 5,
                 retrieval: Optional[RetrievalConfig] = None,
                 event_sink=None) -> None:
        #: Optional ``callable(user_id, basket)`` invoked after every
        #: accepted ``/v1/events`` request — the tee into the append-only
        #: event log that online training replays (see repro.online.log).
        #: Sink errors are counted, never surfaced to the client.
        self.event_sink = event_sink
        self.retrieval = retrieval
        if registry is None:
            registry = CheckpointRegistry(retrieval=retrieval)
        elif retrieval is not None:
            # An externally-owned registry adopts this app's retrieval
            # config so hot swaps keep rebuilding the index.
            registry.retrieval = retrieval
        self.registry = registry
        self.metrics = metrics or MetricsRegistry()
        self.sessions = SessionStore(capacity=session_capacity,
                                     metrics=self.metrics)
        self.default_z = default_z
        self.batcher = MicroBatcher(self._score_many,
                                    max_batch_size=max_batch_size,
                                    max_wait_ms=max_wait_ms,
                                    metrics=self.metrics)
        self._pop_lock = threading.Lock()
        # Lazily allocated; every touch goes through _pop_counts_locked,
        # the single guarded compute-once path (the `_locked` suffix is
        # the racelint caller-holds-the-lock convention).
        self._pop_counts: Optional[np.ndarray] = None

    # -- checkpoint management -------------------------------------------
    def load_checkpoint(self, path) -> ServingArtifacts:
        return self.registry.load(path)

    def install_model(self, model, path: Optional[str] = None
                      ) -> ServingArtifacts:
        return self.registry.install(model, path=path)

    def close(self) -> None:
        self.batcher.close()

    # -- popularity fallback ---------------------------------------------
    def _pop_counts_locked(self, min_size: int = 1) -> np.ndarray:
        """Compute-once/grow accessor for the popularity count vector.

        The caller holds ``_pop_lock``.  Allocation and growth both live
        here so there is exactly one guarded path that writes
        ``self._pop_counts``; callers only index into the returned array.
        """
        counts = self._pop_counts
        if counts is None:
            counts = self._pop_counts = np.zeros(max(min_size, 1),
                                                 dtype=np.int64)
        elif counts.shape[0] < min_size:
            grown = np.zeros(min_size, dtype=np.int64)
            grown[:counts.shape[0]] = counts
            counts = self._pop_counts = grown
        return counts

    def _count_event(self, basket: Sequence[int]) -> None:
        with self._pop_lock:
            counts = self._pop_counts_locked(max(basket) + 1)
            for item in basket:
                counts[item] += 1

    def _popularity_row(self, artifacts: Optional[ServingArtifacts]
                        ) -> np.ndarray:
        with self._pop_lock:
            counts = self._pop_counts_locked().astype(np.float64)
        width = (artifacts.num_items + 1 if artifacts is not None
                 else max(counts.shape[0], 2))
        row = np.zeros(width)
        span = min(width, counts.shape[0])
        row[:span] = counts[:span]
        return row

    # -- scoring ----------------------------------------------------------
    def _score_many(self, payloads: Sequence[Tuple[ServingArtifacts, Any]]
                    ) -> List[np.ndarray]:
        """Batcher callback: group by artifact bundle, score each group.

        Requests admitted under different generations (a hot swap landed
        mid-batch) score against the exact bundle they were admitted with.
        """
        results: List[Optional[np.ndarray]] = [None] * len(payloads)
        groups: Dict[int, Tuple[ServingArtifacts, List[int]]] = {}
        for index, (artifacts, _) in enumerate(payloads):
            groups.setdefault(id(artifacts), (artifacts, []))[1].append(index)
        for artifacts, indices in groups.values():
            views = [payloads[i][1] for i in indices]
            scores = score_views(artifacts, views)
            for row, index in enumerate(indices):
                results[index] = scores[row]
        return results

    # -- endpoints ---------------------------------------------------------
    def _recommend(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        user_id = _require_int(payload, "user_id")
        z = payload.get("z", self.default_z)
        if isinstance(z, bool) or not isinstance(z, int) or z < 1:
            raise ServeError(400, "field 'z' must be a positive integer")
        artifacts = self.registry.current()
        num_items = None if artifacts is None else artifacts.num_items
        if "history" in payload:
            history = _parse_history(payload["history"], num_items)
            view = self.sessions.ephemeral_view(user_id, history, artifacts)
        else:
            view = self.sessions.view(user_id, artifacts)

        if artifacts is None or view is None or view.steps == 0:
            self.metrics.inc("serve_fallback_total")
            scores = self._popularity_row(artifacts)[None, :]
            # Padding (item 0) leaks into the top-z when z exceeds the
            # catalog; drop it rather than recommend a non-item.
            items = [i for i in rank_top_z(scores, z)[0] if i != 0]
            return {"user_id": user_id, "items": items,
                    "source": "popularity", "model": None,
                    "generation": (None if artifacts is None
                                   else artifacts.generation)}

        if self.retrieval is not None and self.retrieval.mode == "ivf":
            items = self._retrieve_ivf(artifacts, view, z)
            if items is not None:
                return {"user_id": user_id, "items": items,
                        "source": "model", "retrieval": "ivf",
                        "model": artifacts.model_class,
                        "generation": artifacts.generation}

        row = self.batcher.submit((artifacts, view))
        items = [i for i in rank_top_z(row[None, :].copy(), z)[0] if i != 0]
        response = {"user_id": user_id, "items": items, "source": "model",
                    "model": artifacts.model_class,
                    "generation": artifacts.generation}
        if self.retrieval is not None:
            # Full-catalog scoring through the exact head: label it so
            # clients can tell the oracle path from the ANN shortlist.
            response["retrieval"] = "exact"
            self.metrics.inc("serve_retrieval_requests_total",
                             {"mode": "exact"})
        return response

    def _retrieve_ivf(self, artifacts: ServingArtifacts, view,
                      z: int) -> Optional[List[int]]:
        """Two-stage path: IVF shortlist, then exact re-rank.

        Returns ``None`` when this bundle cannot retrieve (replay model,
        no index, or a defensive generation mismatch) — the caller falls
        back to exact full-catalog scoring.
        """
        retrieval = artifacts.retrieval
        if retrieval is None:
            return None
        if retrieval.generation != artifacts.generation:
            # Unreachable by construction (the index rides inside the
            # bundle); counted rather than served if it ever regresses.
            self.metrics.inc("serve_retrieval_generation_mismatch_total")
            return None
        query = user_vector(artifacts, view)
        if query is None:
            return None
        config = self.retrieval
        started = time.perf_counter()
        shortlist = retrieval.index.search(query, config.shortlist,
                                           nprobe=config.nprobe)
        searched = time.perf_counter()
        items = rerank_top_z(artifacts, view, shortlist, z)
        self.metrics.observe("serve_retrieval_stage_seconds",
                             searched - started, {"stage": "search"})
        self.metrics.observe("serve_retrieval_stage_seconds",
                             time.perf_counter() - searched,
                             {"stage": "rerank"})
        self.metrics.inc("serve_retrieval_requests_total", {"mode": "ivf"})
        # Shortlist hit-rate: a "hit" filled the requested top-z entirely
        # from the shortlist; a miss means the probed cells held fewer
        # than z candidates (raise nprobe/shortlist if misses grow).
        self.metrics.inc("serve_shortlist_hit_total"
                         if len(items) >= z else "serve_shortlist_miss_total")
        return items

    def _events(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        user_id = _require_int(payload, "user_id")
        artifacts = self.registry.current()
        num_items = None if artifacts is None else artifacts.num_items
        basket = _parse_basket(payload.get("basket"), num_items)
        session = self.sessions.append_event(user_id, basket, artifacts)
        self._count_event(basket)
        self.metrics.inc("serve_events_total")
        if self.event_sink is not None:
            try:
                self.event_sink(user_id, basket)
            except Exception:  # noqa: BLE001 — the stream must not 500
                self.metrics.inc("serve_event_sink_errors_total")
        return {"user_id": user_id,
                "session_length": len(session.events)}

    def _explain(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        artifacts = self.registry.current()
        if artifacts is None:
            raise ServeError(409, "no checkpoint loaded; /v1/explain needs "
                                  "a Causer checkpoint")
        if not artifacts.supports_explain:
            raise ServeError(409, f"loaded model {artifacts.model_class!r} "
                                  f"does not provide causal explanations; "
                                  f"load a Causer checkpoint")
        user_id = _require_int(payload, "user_id")
        target = _require_int(payload, "target_item")
        if not 1 <= target <= artifacts.num_items:
            raise ServeError(400, f"target_item {target} outside the "
                                  f"catalog (1..{artifacts.num_items})")
        top = payload.get("top", 5)
        if isinstance(top, bool) or not isinstance(top, int) or top < 1:
            raise ServeError(400, "field 'top' must be a positive integer")
        if "history" in payload:
            events: Sequence[Tuple[int, ...]] = _parse_history(
                payload["history"], artifacts.num_items)
        else:
            view = self.sessions.view(user_id, artifacts)
            if view is None or view.steps == 0:
                raise ServeError(404, f"user {user_id} has no session "
                                      f"events and no history was given")
            events = view.events
        edges = top_causal_edges(artifacts, events, target, top=top)
        return {"user_id": user_id, "target_item": target, "edges": edges,
                "generation": artifacts.generation}

    def _healthz(self) -> Dict[str, Any]:
        artifacts = self.registry.current()
        return {"status": "ok" if artifacts is not None else "degraded",
                "checkpoint": (None if artifacts is None
                               else artifacts.describe()),
                "sessions": len(self.sessions)}

    # -- routing -----------------------------------------------------------
    def handle(self, method: str, path: str,
               payload: Optional[Dict[str, Any]] = None) -> Response:
        """Serve one request; never raises (errors become status codes)."""
        endpoint = path
        started = time.perf_counter()
        try:
            status, body, ctype = self._route(method, path, payload)
        except ServeError as exc:
            status, body, ctype = exc.status, {"error": str(exc)}, JSON_TYPE
            self.metrics.inc("serve_errors_total", {"endpoint": endpoint})
        except Exception as exc:  # noqa: BLE001 — the server must not die
            status = 500
            body, ctype = {"error": f"internal error: {exc}"}, JSON_TYPE
            self.metrics.inc("serve_errors_total", {"endpoint": endpoint})
        self.metrics.inc("serve_requests_total",
                         {"endpoint": endpoint, "status": str(status)})
        self.metrics.observe("serve_request_latency_seconds",
                             time.perf_counter() - started,
                             {"endpoint": endpoint})
        return status, body, ctype

    def _route(self, method: str, path: str,
               payload: Optional[Dict[str, Any]]) -> Response:
        if path == "/healthz":
            if method != "GET":
                raise ServeError(405, "use GET for /healthz")
            return 200, self._healthz(), JSON_TYPE
        if path == "/metrics":
            if method != "GET":
                raise ServeError(405, "use GET for /metrics")
            return 200, self.metrics.render(), TEXT_TYPE
        handlers = {"/v1/recommend": self._recommend,
                    "/v1/events": self._events,
                    "/v1/explain": self._explain}
        handler = handlers.get(path)
        if handler is None:
            raise ServeError(404, f"unknown path {path!r}")
        if method != "POST":
            raise ServeError(405, f"use POST for {path}")
        if payload is None or not isinstance(payload, dict):
            raise ServeError(400, "request body must be a JSON object")
        return 200, handler(payload), JSON_TYPE


class InProcessClient:
    """Socket-free client: same routes, same JSON discipline, no server."""

    def __init__(self, app: ServeApp) -> None:
        self.app = app

    def request(self, method: str, path: str,
                payload: Optional[Dict[str, Any]] = None
                ) -> Tuple[int, Any]:
        if payload is not None:
            payload = json.loads(json.dumps(payload))
        status, body, ctype = self.app.handle(method, path, payload)
        if ctype == JSON_TYPE:
            # Round-trip so anything JSON-unserializable fails loudly here
            # exactly as it would over the wire.
            body = json.loads(json.dumps(body))
        return status, body

    def get(self, path: str) -> Tuple[int, Any]:
        return self.request("GET", path)

    def post(self, path: str, payload: Dict[str, Any]) -> Tuple[int, Any]:
        return self.request("POST", path, payload)


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        self._dispatch("GET", None)

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        length = int(self.headers.get("Content-Length", 0) or 0)
        raw = self.rfile.read(length) if length else b""
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else None
        except (UnicodeDecodeError, json.JSONDecodeError):
            self._write(400, {"error": "request body is not valid JSON"},
                        JSON_TYPE)
            return
        self._dispatch("POST", payload)

    def _dispatch(self, method: str, payload: Optional[Dict[str, Any]]
                  ) -> None:
        status, body, ctype = self.server.app.handle(  # type: ignore[attr-defined]
            method, self.path, payload)
        self._write(status, body, ctype)

    def _write(self, status: int, body: Any, ctype: str) -> None:
        data = (body if isinstance(body, str)
                else json.dumps(body)).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # access logs live in /metrics, not on stderr


class ServeServer:
    """ThreadingHTTPServer bound to a :class:`ServeApp`."""

    def __init__(self, app: ServeApp, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.app = app
        self.httpd = ThreadingHTTPServer((host, port), _Handler)
        self.httpd.app = app  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self.httpd.server_address[0], self.httpd.server_address[1]

    def start(self) -> "ServeServer":
        """Serve on a background thread (tests / embedding)."""
        self._thread = threading.Thread(target=self.httpd.serve_forever,
                                        daemon=True, name="repro-serve-http")
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self.httpd.serve_forever()

    def shutdown(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self.app.close()
