"""Dynamic causal graphs — the paper's first future-work direction (§VI).

    "an interesting direction is to introduce dynamic causal graph into our
     model, where the causal relation can be altered when the interaction
     times are different."

We realise the simplest useful version: the history is partitioned into
*recency segments* (old vs recent by default) and each segment owns its own
cluster-level causal matrix ``W^c_s``.  Eq. 9/10 are applied per segment —
a recent printer purchase may strongly cause an ink-box purchase while a
year-old one no longer does.  Each segment matrix carries its own NOTEARS
acyclicity penalty, so every snapshot of the causal structure remains a
DAG.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..data.batching import PaddedBatch
from ..nn import Module, Tensor
from .causal_graph import ClusterCausalGraph
from .causer import Causer
from .config import CauserConfig


class DynamicClusterCausalGraph(Module):
    """A stack of per-segment cluster-level causal graphs."""

    def __init__(self, num_clusters: int, num_segments: int,
                 rng: np.random.Generator) -> None:
        super().__init__()
        if num_segments < 1:
            raise ValueError("need at least one segment")
        self.num_clusters = num_clusters
        self.num_segments = num_segments
        self.segments: List[ClusterCausalGraph] = []
        for s in range(num_segments):
            graph = ClusterCausalGraph(num_clusters, rng)
            self.register_module(f"segment{s}", graph)
            self.segments.append(graph)

    def matrix(self, segment: int) -> Tensor:
        return self.segments[segment].matrix()

    def acyclicity(self) -> Tensor:
        """Sum of per-segment constraint values (0 iff every snapshot is a DAG)."""
        total = self.segments[0].acyclicity()
        for graph in self.segments[1:]:
            total = total + graph.acyclicity()
        return total

    def acyclicity_value(self) -> float:
        return float(sum(g.acyclicity_value() for g in self.segments))

    def l1(self) -> Tensor:
        total = self.segments[0].l1()
        for graph in self.segments[1:]:
            total = total + graph.l1()
        return total

    def numpy_matrix(self, segment: int) -> np.ndarray:
        return self.segments[segment].numpy_matrix()

    def drift(self) -> float:
        """Mean absolute difference between consecutive segment graphs —
        how much the causal structure moves over time."""
        if self.num_segments < 2:
            return 0.0
        diffs = [np.abs(self.numpy_matrix(s + 1) - self.numpy_matrix(s)).mean()
                 for s in range(self.num_segments - 1)]
        return float(np.mean(diffs))


class DynamicCauser(Causer):
    """Causer with a recency-segmented causal graph.

    ``recent_window`` history steps before the prediction point use the
    *recent* graph (the last segment); earlier steps use progressively
    older segments, split evenly.
    """

    def __init__(self, num_users: int, num_items: int,
                 raw_features: np.ndarray,
                 config: Optional[CauserConfig] = None,
                 num_segments: int = 2,
                 recent_window: int = 3) -> None:
        super().__init__(num_users, num_items, raw_features, config)
        self.name = f"DynamicCauser ({self.config.cell_type.upper()})"
        self.num_segments = num_segments
        self.recent_window = recent_window
        self.dynamic_graph = DynamicClusterCausalGraph(
            self.config.num_clusters, num_segments, self.rng)
        # The base class's single graph stays for pretrain-seeding; the
        # dynamic stack is seeded from it at fit time.
        self._graph_module_for_penalties = self.dynamic_graph

    # -- segment assignment ------------------------------------------------
    def _segment_of_steps(self, batch: PaddedBatch) -> np.ndarray:
        """Per-(row, step) segment index: recent steps get the last segment."""
        step_mask = batch.step_mask
        b, t = step_mask.shape
        lengths = step_mask.sum(axis=1)
        positions = np.tile(np.arange(t), (b, 1))
        from_end = lengths[:, None] - positions  # 1 = most recent step
        segments = np.zeros((b, t), dtype=np.int64)
        recent = (from_end >= 1) & (from_end <= self.recent_window)
        segments[recent] = self.num_segments - 1
        if self.num_segments > 2:
            older = ~recent & step_mask
            # Spread older steps over the remaining segments evenly.
            span = np.maximum(lengths[:, None] - self.recent_window, 1)
            frac = np.clip((from_end - self.recent_window - 1) / span, 0, 0.999)
            segments[older] = ((1.0 - frac[older])
                               * (self.num_segments - 1)).astype(np.int64)
        return segments

    # -- overridden forward pieces ------------------------------------------
    def _pairwise_effects(self, batch: PaddedBatch, assignments: Tensor,
                          candidates: Optional[np.ndarray]) -> Tensor:
        """Segment-aware eq. 9: each step uses its segment's ``W^c_s``."""
        b, t, s = batch.items.shape
        hist_assign = assignments[batch.items]                  # (B, T, S, K)
        k = hist_assign.shape[-1]
        flat = hist_assign.reshape(b, t * s, k)
        if candidates is None:
            cand_assign_t = assignments.T                        # (K, V+1)
        else:
            cand_assign_t = assignments[candidates].transpose(0, 2, 1)

        segments = self._segment_of_steps(batch)                # (B, T)
        combined: Optional[Tensor] = None
        for segment in range(self.num_segments):
            projected = flat @ self.dynamic_graph.matrix(segment)
            pairwise = (projected @ cand_assign_t).reshape(b, t, s, -1)
            select = (segments == segment).astype(np.float64)[:, :, None, None]
            term = pairwise * Tensor(select)
            combined = term if combined is None else combined + term
        return combined

    # -- training hooks ------------------------------------------------------
    def fit_samples(self, samples):
        cfg = self.config
        if cfg.pretrain_graph and cfg.use_causal:
            self._seed_graph(samples)  # calibrates the base graph
            for graph in self.dynamic_graph.segments:
                # gradlint: disable-next=GL003 — pre-training seed copy into
                # the per-segment graphs; happens before any graph is built.
                graph.weights.data[...] = self.graph.weights.data
        return super().fit_samples(samples)

    def item_causal_matrix(self, segment: Optional[int] = None) -> np.ndarray:
        """Learned item-level W for one segment (default: most recent)."""
        segment = self.num_segments - 1 if segment is None else segment
        assignments = self.clusters.assignments().data
        return (assignments @ self.dynamic_graph.numpy_matrix(segment)
                @ assignments.T)

    def graph_drift(self) -> float:
        return self.dynamic_graph.drift()
