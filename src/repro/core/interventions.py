"""Interventional analysis on trained Causer models.

The point of learning a *causal* graph rather than correlations is that it
supports interventions.  This module provides:

* :func:`total_cluster_effect` — the summed path effect of cluster ``i`` on
  cluster ``j`` under the learned DAG (direct edge weights multiplied along
  every directed path, summed over paths: the linear-SEM total effect).
* :func:`counterfactual_scores` / :func:`counterfactual_shift` — "what
  would the model recommend had item ``x`` not been in the history?":
  re-score with the item removed and compare, yielding the model-level
  causal attribution of a past interaction on each recommendation.
* :func:`most_influential_history_item` — the history item whose removal
  moves the target's score the most; on labeled data this is an
  intervention-based explainer, complementary to §V-E's ``Ŵ·α`` scores.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..causal.graph import topological_order, validate_adjacency
from ..data.interactions import EvalSample
from .causer import Causer


def total_cluster_effect(cluster_graph: np.ndarray, source: int,
                         target: int) -> float:
    """Total (path-summed) effect of ``source`` on ``target`` in a DAG.

    For a linear SEM with edge weights ``W``, the total causal effect of a
    unit intervention on node ``source`` equals the sum over all directed
    paths of the product of edge weights along each path — computable in
    topological order in O(V + E).
    """
    weights = validate_adjacency(cluster_graph)
    order = topological_order(weights)
    effect = np.zeros(weights.shape[0])
    effect[source] = 1.0
    for node in order:
        if effect[node] == 0.0:
            continue
        for child in np.nonzero(weights[node])[0]:
            if child != source:
                effect[child] += effect[node] * weights[node, child]
    return float(effect[target])


def total_effect_matrix(cluster_graph: np.ndarray) -> np.ndarray:
    """All-pairs total effects: ``(I - W)^-1 - I`` restricted to a DAG.

    Equivalent to summing :func:`total_cluster_effect` over all pairs but
    in closed form; the diagonal is zeroed.
    """
    weights = validate_adjacency(cluster_graph)
    m = weights.shape[0]
    totals = np.linalg.inv(np.eye(m) - weights) - np.eye(m)
    np.fill_diagonal(totals, 0.0)
    return totals


def _without_item(sample: EvalSample, item: int) -> Optional[EvalSample]:
    """The sample with every occurrence of ``item`` removed (None if the
    history would become empty)."""
    history = []
    for basket in sample.history:
        kept = tuple(i for i in basket if i != item)
        if kept:
            history.append(kept)
    if not history:
        return None
    return EvalSample(user_id=sample.user_id, history=tuple(history),
                      target=sample.target)


def counterfactual_scores(model: Causer, sample: EvalSample,
                          remove_item: int) -> Optional[np.ndarray]:
    """Full-catalog scores under do(remove ``remove_item`` from history)."""
    modified = _without_item(sample, remove_item)
    if modified is None:
        return None
    return model.score_samples([modified])[0]


def counterfactual_shift(model: Causer, sample: EvalSample,
                         remove_item: int,
                         target_item: Optional[int] = None) -> float:
    """Score drop of the target caused by removing ``remove_item``.

    Positive values mean the history item *supports* the target (its
    removal lowers the target's score) — the intervention-level notion of
    "cause" the paper's Fig. 1 appeals to.
    """
    target = target_item if target_item is not None else sample.target[0]
    baseline = model.score_samples([sample])[0][target]
    counterfactual = counterfactual_scores(model, sample, remove_item)
    if counterfactual is None:
        return float(baseline)
    return float(baseline - counterfactual[target])


def most_influential_history_item(model: Causer,
                                  sample: EvalSample,
                                  target_item: Optional[int] = None
                                  ) -> Tuple[int, float]:
    """The history item whose removal most lowers the target's score."""
    unique_items: List[int] = []
    for basket in sample.history:
        for item in basket:
            if item not in unique_items:
                unique_items.append(item)
    if not unique_items:
        raise ValueError("sample has an empty history")
    shifts = {item: counterfactual_shift(model, sample, item, target_item)
              for item in unique_items}
    best = max(shifts, key=lambda it: shifts[it])
    return best, shifts[best]


def intervention_report(model: Causer, sample: EvalSample,
                        top_k: int = 3) -> str:
    """Human-readable attribution of the target to history items."""
    target = sample.target[0]
    unique_items = list(dict.fromkeys(
        item for basket in sample.history for item in basket))
    shifts = [(item, counterfactual_shift(model, sample, item, target))
              for item in unique_items]
    shifts.sort(key=lambda pair: -pair[1])
    lines = [f"target item#{target} — score attribution by removal:"]
    for item, shift in shifts[:top_k]:
        lines.append(f"  remove item#{item:<6d} -> score drops {shift:+.4f}")
    return "\n".join(lines)
