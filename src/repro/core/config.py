"""Configuration for the Causer model (Table III tuning ranges)."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..models.base import TrainConfig


@dataclass
class CauserConfig(TrainConfig):
    """Hyper-parameters of the Causer framework.

    Extends the shared :class:`~repro.models.base.TrainConfig` with the
    causal-discovery knobs of §III:

    * ``num_clusters`` — K, the latent cluster count (Fig. 4 sweeps it),
    * ``epsilon`` — the causal-filter threshold of eq. 10 (Fig. 5),
    * ``eta`` — the softmax temperature of the cluster assignment (Fig. 6),
    * ``lambda_l1`` — sparsity weight on ``W^c`` (eq. 11),
    * ``beta1/beta2/kappa1/kappa2`` — augmented-Lagrangian state
      (Algorithm 1 lines 14–15),
    * ``update_every`` — epochs between ``Θ_a``/``W^c`` updates (the §III-C
      efficiency device; 1 = always update),
    * ``filtering_mode`` — how eq. 10's per-candidate history masking is
      realised (see the field's own comment below),
    * ablation switches matching Table V's variants.
    """

    cell_type: str = "gru"
    num_clusters: int = 8
    epsilon: float = 0.3
    eta: float = 1.0
    lambda_l1: float = 0.01
    cluster_weight: float = 1.0
    reconstruction_weight: float = 1.0
    encoder_hidden_dim: int = 32
    beta1_init: float = 0.0
    beta2_init: float = 0.25
    kappa1: float = 2.0
    kappa2: float = 0.9
    beta2_max: float = 1e8
    update_every: int = 1
    #: How eq. 10's per-candidate history filtering is realised:
    #: * ``"cluster"`` (default) — one filtered RNN pass per candidate
    #:   *cluster*: every candidate hard-assigned to cluster k shares the
    #:   mask ``1(W_.k > ε)``, so K passes reproduce strict filtering
    #:   exactly in the hard-assignment limit at 1/|V| of the cost.
    #: * ``"shared"`` — a single unfiltered RNN pass; causality enters only
    #:   through the aggregation weights ``Ŵ α`` (fast approximation).
    #: * ``"strict"`` — the literal per-candidate re-run (evaluation only).
    filtering_mode: str = "shared"
    #: Seed ``W^c`` from decay-weighted cluster-transition lift estimated on
    #: the training data before joint optimization (§III-C's pre-training
    #: suggestion).  Ablated in the ablation benchmark.
    pretrain_graph: bool = True
    # Table V ablation switches (all True = full Causer).
    use_clustering_loss: bool = True
    use_reconstruction_loss: bool = True
    use_attention: bool = True
    use_causal: bool = True

    def __post_init__(self) -> None:
        if self.cell_type not in ("gru", "lstm"):
            raise ValueError(f"cell_type must be 'gru' or 'lstm', got {self.cell_type!r}")
        if self.num_clusters < 2:
            raise ValueError("need at least two clusters for a causal graph")
        if not 0.0 <= self.epsilon <= 1.0:
            raise ValueError("epsilon is a threshold on mixture weights; use [0, 1]")
        if self.eta <= 0:
            raise ValueError("temperature eta must be positive")
        if self.kappa1 <= 1.0:
            raise ValueError("kappa1 must exceed 1 (Algorithm 1)")
        if not 0.0 < self.kappa2 < 1.0:
            raise ValueError("kappa2 must lie in (0, 1) (Algorithm 1)")
        if self.update_every < 1:
            raise ValueError("update_every must be at least 1")
        if self.filtering_mode not in ("cluster", "shared", "strict"):
            raise ValueError(
                f"filtering_mode must be 'cluster', 'shared' or 'strict', "
                f"got {self.filtering_mode!r}")


def ablation_config(base: CauserConfig, variant: str) -> CauserConfig:
    """Clone ``base`` with one Table V ablation applied.

    ``variant`` is one of ``"full"``, ``"-clus"``, ``"-rec"``, ``"-att"``,
    ``"-causal"``.
    """
    from dataclasses import replace
    flags = {
        "full": {},
        "-clus": {"use_clustering_loss": False},
        "-rec": {"use_reconstruction_loss": False},
        "-att": {"use_attention": False},
        "-causal": {"use_causal": False},
    }
    if variant not in flags:
        raise ValueError(f"unknown ablation variant {variant!r}; "
                         f"choose from {sorted(flags)}")
    return replace(base, **flags[variant])
