"""Differentiable item clustering (the paper's eqs. 6–8).

Items are represented as mixtures of ``K`` latent clusters via an
encoder/decoder pair:

* **Encoder** (eq. 6): ``v* = V2 σ(V1 ṽ + b1) + b2`` maps raw features to a
  semantic embedding.
* **Clustering loss** (eq. 7): ``Σ_v ||v* − Σ_k v̄_k m_k||²`` pulls every
  embedding onto a convex combination of cluster centers; the assignment
  ``v̄ = softmax(a / η)`` relaxes the simplex constraint with free logits
  ``a`` and temperature ``η``.
* **Decoder / reconstruction loss** (eq. 8): ``Σ_v ||v̂ − ṽ||²`` with
  ``v̂ = V4 σ(V3 v* + b3) + b4`` anchors ``v*`` to the item's identity.

The encoder output doubles as the input item embedding of the sequential
model ``g``, exactly as §III-B prescribes.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..nn import Linear, Module, Parameter, Tensor
from ..nn import functional as F


class ItemClusterModule(Module):
    """Encoder/decoder item clustering with soft assignments.

    Parameters
    ----------
    raw_features:
        ``(num_items + 1, d)`` constant matrix of item raw features (row 0
        is the padding item).
    num_clusters:
        K, the latent cluster count.
    embedding_dim:
        d2, the dimension of ``v*`` (also the sequential model's input dim).
    hidden_dim:
        d1, the encoder/decoder hidden width.
    eta:
        Softmax temperature; ``η → 0`` hardens assignments to one-hot.
    """

    def __init__(self, raw_features: np.ndarray, num_clusters: int,
                 embedding_dim: int, hidden_dim: int, eta: float,
                 rng: np.random.Generator) -> None:
        super().__init__()
        features = np.asarray(raw_features, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError("raw_features must be a 2-d matrix")
        self.raw_features = features
        self.num_items_padded, self.feature_dim = features.shape
        self.num_clusters = num_clusters
        self.eta = eta
        self.encoder_in = Linear(self.feature_dim, hidden_dim, rng)   # V1, b1
        self.encoder_out = Linear(hidden_dim, embedding_dim, rng)     # V2, b2
        self.decoder_in = Linear(embedding_dim, hidden_dim, rng)      # V3, b3
        self.decoder_out = Linear(hidden_dim, self.feature_dim, rng)  # V4, b4
        self.centers = Parameter(
            rng.normal(0.0, 0.1, size=(num_clusters, embedding_dim)))  # m_k
        self.assignment_logits = Parameter(
            self._seed_assignment_logits(rng))                         # a

    def _seed_assignment_logits(self, rng: np.random.Generator) -> np.ndarray:
        """Feature-space seeding of the assignment logits (DEC-style).

        K random items act as provisional centroids; every item's logits
        favour its nearest centroid in raw-feature space.  This gives the
        causal graph structured (near-hard) assignments from the first
        epoch — with a flat random init the soft assignments are uniform,
        every item-level relation collapses to the mean of ``W^c``, and the
        ε gate of eq. 10 becomes all-or-nothing.
        """
        logits = rng.normal(0.0, 0.1, size=(self.num_items_padded,
                                            self.num_clusters))
        num_real = self.num_items_padded - 1
        if num_real >= self.num_clusters:
            # Farthest-point (k-means++-style) seeding: random inits often
            # drop a true cluster and merge two others, which garbles the
            # causal graph downstream.
            first = int(rng.integers(1, num_real + 1))
            seeds = [first]
            dist = np.linalg.norm(self.raw_features[1:]
                                  - self.raw_features[first], axis=1)
            while len(seeds) < self.num_clusters:
                nxt = int(np.argmax(dist)) + 1
                seeds.append(nxt)
                dist = np.minimum(dist, np.linalg.norm(
                    self.raw_features[1:] - self.raw_features[nxt], axis=1))
            centroids = self.raw_features[seeds].copy()       # (K, d)
            nearest = np.zeros(self.num_items_padded, dtype=np.int64)
            for _ in range(10):  # a few Lloyd iterations suffice for seeding
                distances = np.linalg.norm(
                    self.raw_features[:, None, :] - centroids[None, :, :],
                    axis=-1)
                nearest = np.argmin(distances, axis=1)
                for k in range(self.num_clusters):
                    members = self.raw_features[1:][nearest[1:] == k]
                    if len(members):
                        centroids[k] = members.mean(axis=0)
            logits[np.arange(self.num_items_padded), nearest] += 2.0
        return logits

    # ------------------------------------------------------------------
    def encode(self) -> Tensor:
        """All item embeddings ``v*``, shape ``(num_items + 1, d2)``."""
        raw = Tensor(self.raw_features)
        return self.encoder_out(self.encoder_in(raw).sigmoid())

    def decode(self, embeddings: Tensor) -> Tensor:
        """Reconstruct raw features from ``v*``."""
        return self.decoder_out(self.decoder_in(embeddings).sigmoid())

    def assignments(self) -> Tensor:
        """Soft cluster-assignment matrix ``v̄``: ``(num_items + 1, K)``.

        Rows sum to one; temperature ``η`` controls hardness.
        """
        return F.softmax(self.assignment_logits * (1.0 / self.eta), axis=-1)

    def clustering_loss(self, embeddings: Tensor) -> Tensor:
        """Eq. 7: squared distance of each embedding to its mixture center.

        The padding row (index 0) is excluded — it has no raw features.
        """
        mixtures = self.assignments() @ self.centers
        diff = embeddings[1:] - mixtures[1:]
        return (diff * diff).mean()

    def reconstruction_loss(self, embeddings: Tensor) -> Tensor:
        """Eq. 8: squared reconstruction error of the raw features."""
        reconstructed = self.decode(embeddings)
        diff = reconstructed[1:] - Tensor(self.raw_features[1:])
        return (diff * diff).mean()

    # -- inspection helpers (no autograd) --------------------------------
    def hard_assignments(self) -> np.ndarray:
        """Most likely cluster per item (argmax of the soft assignment)."""
        return np.argmax(self.assignments().data, axis=-1)

    def assignment_entropy(self) -> float:
        """Mean entropy of item assignments — 0 means fully hard clusters."""
        probs = self.assignments().data[1:]
        safe = np.clip(probs, 1e-12, 1.0)
        return float(-(safe * np.log(safe)).sum(axis=-1).mean())
