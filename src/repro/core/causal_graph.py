"""Cluster-level causal graph module (eqs. 9 and the DAG constraint).

Holds the learnable ``W^c ∈ R^{K×K}`` with a structurally-zero diagonal,
expands it to item-level relations ``W_ab = ā^T W^c b̄`` (eq. 9), and
exposes the NOTEARS acyclicity value ``h(W^c)`` and L1 penalty used in the
augmented-Lagrangian objective (eq. 11).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..causal.dag_constraint import h_tensor, h_value
from ..causal.graph import binarize, is_dag, prune_to_dag
from ..nn import Module, Parameter, Tensor


class ClusterCausalGraph(Module):
    """Learnable cluster-level causal adjacency with DAG regularization."""

    def __init__(self, num_clusters: int, rng: np.random.Generator,
                 init_low: float = 0.3, init_high: float = 0.7) -> None:
        super().__init__()
        self.num_clusters = num_clusters
        # Start well above typical ε thresholds: the hard gate 1(W > ε) in
        # eq. 10 passes no gradient to entries below ε, so a near-zero init
        # would freeze the graph at birth.  Training then *prunes* edges via
        # L1 + the DAG penalty rather than growing them from zero.
        weights = rng.uniform(init_low, init_high,
                              size=(num_clusters, num_clusters))
        np.fill_diagonal(weights, 0.0)
        self.weights = Parameter(weights)
        # Constant mask keeping the diagonal exactly zero (no self-causes).
        self._off_diagonal = 1.0 - np.eye(num_clusters)

    def matrix(self) -> Tensor:
        """``W^c`` with the diagonal masked to zero (autograd-visible)."""
        return self.weights * Tensor(self._off_diagonal)

    def item_level(self, assignments: Tensor) -> Tensor:
        """Eq. 9: item-level causal matrix ``Ā W^c Ā^T``.

        ``assignments`` is the ``(num_items + 1, K)`` soft-assignment matrix;
        the result is ``(num_items + 1, num_items + 1)`` with ``out[a, b]``
        the causal strength of item ``a`` on item ``b``.
        """
        return assignments @ self.matrix() @ assignments.T

    def acyclicity(self) -> Tensor:
        """``h(W^c) = trace(e^{W^c ∘ W^c}) - K`` as an autograd scalar."""
        return h_tensor(self.matrix())

    def acyclicity_value(self) -> float:
        """Constraint value without building a graph node."""
        return h_value(self.weights.data * self._off_diagonal)

    def l1(self) -> Tensor:
        """``||W^c||_1`` sparsity penalty."""
        return self.matrix().abs().sum()

    # -- inspection -------------------------------------------------------
    def numpy_matrix(self) -> np.ndarray:
        return self.weights.data * self._off_diagonal

    def thresholded(self, threshold: float) -> np.ndarray:
        """Binary cluster graph at ``|W^c| > threshold``."""
        return binarize(self.numpy_matrix(), threshold)

    def as_dag(self, threshold: float = 0.1) -> np.ndarray:
        """Thresholded graph with any residual cycles pruned away."""
        matrix = self.numpy_matrix().copy()
        matrix[np.abs(matrix) <= threshold] = 0.0
        return prune_to_dag(matrix)

    def is_acyclic(self, threshold: float = 0.1) -> bool:
        return is_dag(self.numpy_matrix(), threshold)
