"""The Causer model (§III): sequential recommendation with causal discovery.

Implements eq. 10's scoring:

    h_{t+1} = g(h_t, v_t ⊙ 1(W_.b > ε), u)
    f(b | H, u) = σ( e_b^T ( V Σ_t Ŵ_{v_t b} α_t h_t ) )

with

* input item embeddings from the cluster encoder (eq. 6),
* ``W`` expanded from the cluster-level graph ``W^c`` via eq. 9,
* ``Ŵ_{v_t b} = v_t^T (W_.b ⊙ 1(W_.b > ε))`` — the total causal effect of
  basket ``t`` on candidate ``b``,
* ``α_t`` — bilinear attention against the final hidden state,
* the augmented-Lagrangian training loop of Algorithm 1.

Three filtering modes are provided (DESIGN.md §5, ``CauserConfig.filtering_mode``):

* **shared** (default): one RNN pass over the unfiltered history; causality
  enters through the aggregation weights ``Ŵ_{v_t b} α_t``, which zero out
  causally-irrelevant steps.  Full-catalog scoring is a batched matmul.
* **cluster**: one filtered RNN pass per candidate *cluster* — candidates
  hard-assigned to the same cluster share the mask ``1(W_{·,k} > ε)``, so K
  passes reproduce strict filtering exactly in the hard-assignment limit.
* **strict**: the literal eq. 10 — per candidate, history inputs are masked
  by ``1(W_.b > ε)`` and all-zero steps are skipped before re-running the
  RNN.  Cost scales with the candidate count; used for small candidate
  sets, tests and the efficiency study.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional, Sequence

import numpy as np

from ..data.batching import PaddedBatch, iterate_batches, pad_samples, sample_negatives
from ..data.interactions import EvalSample, SequenceCorpus, training_prefixes
from ..models.base import FitResult, NeuralSequentialRecommender
from ..nn import BilinearAttention, Linear, RecurrentLayer, Tensor, losses, make_optimizer
from ..nn import functional as F
from .causal_graph import ClusterCausalGraph
from .clustering import ItemClusterModule
from .config import CauserConfig
from .pretrain import pretrain_cluster_graph


class Causer(NeuralSequentialRecommender):
    """Causality-enhanced sequential recommender (GRU or LSTM backbone)."""

    def __init__(self, num_users: int, num_items: int,
                 raw_features: np.ndarray,
                 config: Optional[CauserConfig] = None) -> None:
        config = config or CauserConfig()
        name = f"Causer ({config.cell_type.upper()})"
        super().__init__(num_users, num_items, config, name=name)
        self.config: CauserConfig = config
        features = np.asarray(raw_features, dtype=np.float64)
        if features.shape[0] != num_items + 1:
            raise ValueError(
                f"raw_features must cover the padded vocabulary: expected "
                f"{num_items + 1} rows, got {features.shape[0]}")
        cfg = config
        self.clusters = ItemClusterModule(
            features, cfg.num_clusters, cfg.embedding_dim,
            cfg.encoder_hidden_dim, cfg.eta, self.rng)
        self.graph = ClusterCausalGraph(cfg.num_clusters, self.rng)
        self.rnn = RecurrentLayer(cfg.cell_type, cfg.embedding_dim,
                                  cfg.hidden_dim, self.rng)
        self.attention = BilinearAttention(cfg.hidden_dim, self.rng)  # A
        self.adapt = Linear(cfg.hidden_dim, cfg.embedding_dim, self.rng,
                            bias=False)                                # V
        # Eq. 10's g(h_t, ·, u_k) conditions on the user: the user embedding
        # seeds the initial hidden state.
        self.user_init = Linear(cfg.embedding_dim, cfg.hidden_dim, self.rng)
        # Augmented-Lagrangian state (Algorithm 1).
        self.beta1 = cfg.beta1_init
        self.beta2 = cfg.beta2_init
        self._h_previous = float("inf")
        self._penalty_scale = 1.0  # set per epoch from the batch count
        # Subclasses (e.g. DynamicCauser) may swap in a different module to
        # carry the L1/acyclicity penalties.
        self._graph_module_for_penalties = self.graph
        # (fingerprint, matrix) cache for item_causal_matrix(): the K×K→N×N
        # projection is rebuilt only when its inputs actually changed.
        self._item_matrix_cache: Optional[tuple] = None

    # ------------------------------------------------------------------
    # Forward pieces
    # ------------------------------------------------------------------
    def _user_initial_state(self, batch: PaddedBatch) -> Tensor:
        """``u_k``-conditioned initial hidden state (eq. 10's g(·, ·, u))."""
        user_emb = self.user_embedding(batch.users % max(self.num_users, 1))
        return self.user_init(user_emb).tanh()

    def _input_embeddings(self, item_embeddings: Tensor) -> Tensor:
        """Input representation: encoded features (eq. 6) + free id offset.

        The encoder output alone cannot separate items with near-identical
        raw features (it is constrained onto cluster mixtures by eq. 7), so
        a free per-item embedding is added — ``Θ_e``'s item half in the
        paper's parameter inventory.
        """
        return item_embeddings + self.item_embedding.weight

    def _history_states(self, batch: PaddedBatch, item_embeddings: Tensor):
        """Run the backbone over basket-summed input embeddings."""
        inputs_table = self._input_embeddings(item_embeddings)
        gathered = inputs_table[batch.items]                 # (B, T, S, d)
        mask = Tensor(batch.basket_mask[..., None])
        inputs = (gathered * mask).sum(axis=2)
        return self.rnn(inputs, step_mask=batch.step_mask,
                        initial_state=self._user_initial_state(batch))

    def _attention_scores(self, states: Tensor, last: Tensor) -> Tensor:
        """Unnormalized ``sim(h_t, h_{j-1})``; zeros in the (-att) ablation.

        Zero scores make the masked softmax uniform over the surviving
        (causally-filtered) steps, which is exactly the (-att) variant.
        """
        if self.config.use_attention:
            return self.attention.raw_scores(states, last)
        return Tensor(np.zeros((states.shape[0], states.shape[1])))

    def _attention_weights(self, states: Tensor, last: Tensor,
                           step_mask: np.ndarray) -> Tensor:
        """Per-step ``α_t`` over valid steps (no per-candidate masking)."""
        scores = self._attention_scores(states, last)
        return F.masked_softmax(scores, step_mask, axis=-1)

    def _pairwise_effects(self, batch: PaddedBatch, assignments: Tensor,
                          candidates: Optional[np.ndarray]) -> Tensor:
        """Soft item-level causal strengths ``W[item, candidate]`` (eq. 9).

        Shape ``(B, T, S, C)``; ``candidates=None`` means the full catalog.
        """
        b, t, s = batch.items.shape
        hist_assign = assignments[batch.items]               # (B, T, S, K)
        k = hist_assign.shape[-1]
        projected = hist_assign.reshape(b, t * s, k) @ self.graph.matrix()
        if candidates is None:
            # (B, T*S, K) @ (K, V+1) — shared candidate assignments.
            pairwise = projected @ assignments.T
        else:
            cand_assign = assignments[candidates]            # (B, C, K)
            pairwise = projected @ cand_assign.transpose(0, 2, 1)
        return pairwise.reshape(b, t, s, -1)

    def _gated_effects(self, pairwise: Tensor, keep: np.ndarray,
                       basket_mask: np.ndarray) -> Tensor:
        """``Ŵ_{v_t b} = Σ_slots W ⊙ 1(W > ε)``: shape ``(B, T, C)``."""
        gate = keep * basket_mask[..., None]
        return (pairwise * Tensor(gate)).sum(axis=2)

    def _candidate_clusters(self, assignments_data: np.ndarray,
                            candidates: Optional[np.ndarray],
                            batch_size: int) -> np.ndarray:
        """Hard cluster of each candidate, shape ``(B, C)`` (or ``(1, V+1)``)."""
        hard = np.argmax(assignments_data, axis=-1)
        if candidates is None:
            return hard[None, :]
        return hard[candidates]

    def candidate_logits(self, batch: PaddedBatch,
                         candidates: Optional[np.ndarray]) -> Tensor:
        """Eq. 10 logits for explicit candidates (or the full catalog).

        Dispatches on ``config.filtering_mode``; the (-causal) ablation and
        ``"shared"`` mode use a single unfiltered RNN pass, the default
        ``"cluster"`` mode runs one filtered pass per candidate cluster.
        """
        if self.config.use_causal and self.config.filtering_mode == "cluster":
            return self._logits_cluster_filtered(batch, candidates)
        return self._logits_shared(batch, candidates)

    def _candidate_embeddings(self, candidates: Optional[np.ndarray]) -> Tensor:
        if candidates is None:
            return self.output_embedding.weight.reshape(
                1, self.num_items + 1, -1)
        return self.output_embedding(candidates)

    def _candidate_bias(self, candidates: Optional[np.ndarray]) -> Tensor:
        """Per-item output bias — the popularity prior of the scorer."""
        if candidates is None:
            return self.output_bias.reshape(1, self.num_items + 1)
        return self.output_bias[candidates]

    def _logits_shared(self, batch: PaddedBatch,
                       candidates: Optional[np.ndarray]) -> Tensor:
        """Single unfiltered RNN pass; causality enters via ``Ŵ_{v_t b} α_t``.

        ``α`` normalizes over the valid steps; multiplying by the *raw*
        causal effects preserves the total trigger mass
        ``Σ_t α_t Ŵ_{v_t b}`` in the context's scale — the quantity that
        tells the scorer how strongly the candidate is causally supported by
        the history.  Candidates with no surviving cause anywhere receive a
        zero context (uniform prediction — the paper's Remark 2).
        """
        cfg = self.config
        item_embeddings = self.clusters.encode()
        assignments = self.clusters.assignments()
        states, last = self._history_states(batch, item_embeddings)
        alpha = self._attention_weights(states, last, batch.step_mask)
        batch_size, time = alpha.shape

        if cfg.use_causal:
            pairwise = self._pairwise_effects(batch, assignments, candidates)
            keep = (pairwise.data > cfg.epsilon).astype(np.float64)
            effects = self._gated_effects(pairwise, keep, batch.basket_mask)
        else:
            c = (self.num_items + 1 if candidates is None
                 else candidates.shape[1])
            ones = batch.step_mask.astype(np.float64)[:, :, None]
            effects = Tensor(np.broadcast_to(ones, (batch_size, time, c)).copy())

        weights = effects * alpha.reshape(batch_size, time, 1)  # (B, T, C)
        context = weights.transpose(0, 2, 1) @ states            # (B, C, h)
        adapted = self.adapt(context)                            # (B, C, d_e)
        cand_emb = self._candidate_embeddings(candidates)
        return (adapted * cand_emb).sum(axis=-1) + self._candidate_bias(candidates)

    def _logits_cluster_filtered(self, batch: PaddedBatch,
                                 candidates: Optional[np.ndarray]) -> Tensor:
        """Strict eq. 10 semantics with cluster-shared filter masks.

        For every cluster ``k`` the history is filtered by
        ``1(W_{·,k} > ε)`` (all candidates hard-assigned to ``k`` share this
        mask), the RNN re-runs on the filtered inputs with empty steps
        skipped, attention normalizes over the surviving steps, and the
        causal effects ``Ŵ`` weight the surviving states.  Exact strict
        filtering in the hard-assignment limit, at K RNN passes per batch.
        """
        cfg = self.config
        item_embeddings = self.clusters.encode()
        assignments = self.clusters.assignments()
        gathered = self._input_embeddings(item_embeddings)[batch.items]  # (B, T, S, d)

        pairwise = self._pairwise_effects(batch, assignments, candidates)
        cand_clusters = self._candidate_clusters(assignments.data, candidates,
                                                 batch.batch_size)
        # Per-(item, cluster) causal strength drives the shared masks.
        w_cols = (assignments @ self.graph.matrix()).data      # (V+1, K)
        cand_emb = self._candidate_embeddings(candidates)

        logits: Optional[Tensor] = None
        present_clusters = np.unique(cand_clusters)
        # One user-state lookup shared by every per-cluster RNN pass; its
        # gradient accumulates once per consumer, identical to rebuilding it.
        initial_state = self._user_initial_state(batch)
        for k in present_clusters:
            keep_k = ((w_cols[batch.items, k] > cfg.epsilon)
                      & (batch.basket_mask > 0))               # (B, T, S)
            step_mask_k = keep_k.any(axis=2)
            slot_mask = Tensor(keep_k.astype(np.float64)[..., None])
            inputs_k = (gathered * slot_mask).sum(axis=2)
            states_k, last_k = self.rnn(
                inputs_k, step_mask=step_mask_k,
                initial_state=initial_state)
            scores_k = self._attention_scores(states_k, last_k)

            keep_slots = (pairwise.data > cfg.epsilon).astype(np.float64)
            keep_slots = keep_slots * keep_k[..., None]
            effects_k = self._gated_effects(pairwise, keep_slots,
                                            batch.basket_mask)  # (B, T, C)
            surviving = (effects_k.data > 0) & step_mask_k[:, :, None]
            alpha_k = F.masked_softmax(
                scores_k.reshape(scores_k.shape[0], -1, 1), surviving, axis=1)
            weights_k = effects_k * alpha_k
            context_k = weights_k.transpose(0, 2, 1) @ states_k
            logits_k = ((self.adapt(context_k) * cand_emb).sum(axis=-1)
                        + self._candidate_bias(candidates))

            select = (cand_clusters == k).astype(np.float64)   # (B, C) or (1, C)
            contribution = logits_k * Tensor(select)
            logits = contribution if logits is None else logits + contribution
        assert logits is not None, "candidate set produced no clusters"
        return logits

    # ------------------------------------------------------------------
    # Strict (literal eq. 10) filtering
    # ------------------------------------------------------------------
    def candidate_logits_strict(self, batch: PaddedBatch,
                                candidates: np.ndarray) -> np.ndarray:
        """Per-candidate history masking and RNN re-runs (evaluation only).

        The history input at step ``t`` becomes ``v_t ⊙ 1(W_.b > ε)``;
        steps whose filtered basket is empty are skipped (the hidden state
        carries through).  Quadratic in candidates — use for small sets.
        """
        self.eval()
        cfg = self.config
        item_embeddings = self.clusters.encode()
        w_full = self.item_causal_matrix()
        logits = np.zeros(candidates.shape)
        for col in range(candidates.shape[1]):
            cand = candidates[:, col]
            # Mask basket slots that are not causes of this candidate.
            w_cols = w_full[batch.items, cand[:, None, None]]   # (B, T, S)
            keep = (w_cols > cfg.epsilon).astype(np.float64)
            masked = PaddedBatch(
                users=batch.users, items=batch.items,
                basket_mask=batch.basket_mask * keep,
                step_mask=(batch.basket_mask * keep).sum(axis=2) > 0,
                positives=batch.positives, positive_mask=batch.positive_mask)
            states, last = self._history_states(masked, item_embeddings)
            alpha = self._attention_weights(states, last, masked.step_mask)
            effect = (w_cols * keep * batch.basket_mask).sum(axis=2)  # (B, T)
            if not cfg.use_causal:
                effect = masked.step_mask.astype(np.float64)
            weights = (alpha.data * effect)[:, :, None]
            context = (weights * states.data).sum(axis=1)
            adapted = context @ self.adapt.weight.data.T
            cand_emb = self.output_embedding.weight.data[cand]
            logits[:, col] = ((adapted * cand_emb).sum(axis=-1)
                              + self.output_bias.data[cand])
        return logits

    # ------------------------------------------------------------------
    # Training (Algorithm 1)
    # ------------------------------------------------------------------
    def training_loss(self, batch: PaddedBatch,
                      include_causal_penalties: bool = True) -> Tensor:
        """Eq. 11: BCE data term + L1 + clustering/reconstruction + DAG terms.

        ``include_causal_penalties=False`` skips the regularizer
        computation entirely — the §III-C slow-update device: on frozen
        epochs the causal parameters receive no step, so computing their
        penalty gradients is pure waste.
        """
        cfg = self.config
        b, p = batch.positives.shape
        n = batch.negatives.shape[-1]
        candidates = np.concatenate(
            [batch.positives[:, :, None], batch.negatives], axis=2
        ).reshape(b, p * (n + 1))
        logits = self.candidate_logits(batch, candidates)
        targets = np.zeros((b, p, n + 1))
        targets[:, :, 0] = 1.0
        mask = np.repeat(batch.positive_mask[:, :, None], n + 1, axis=2)
        loss = losses.bce_with_logits(logits, targets.reshape(b, -1),
                                      mask=mask.reshape(b, -1))

        if not include_causal_penalties:
            return loss

        # Eq. 11 adds the regularizers ONCE over the whole dataset; with
        # mini-batching each batch must carry only its share, otherwise the
        # penalties are overweighted by the number of batches per epoch and
        # L1 + the DAG penalty erode W^c below the ε gate within a few
        # epochs (a gradient blackout the gate cannot recover from).
        scale = self._penalty_scale
        graph_module = self._graph_module_for_penalties
        penalty = cfg.lambda_l1 * graph_module.l1()
        embeddings = self.clusters.encode()
        if cfg.use_clustering_loss:
            penalty = penalty + (cfg.cluster_weight
                                 * self.clusters.clustering_loss(embeddings))
        if cfg.use_reconstruction_loss:
            penalty = penalty + (cfg.reconstruction_weight
                                 * self.clusters.reconstruction_loss(embeddings))
        h = graph_module.acyclicity()
        penalty = penalty + self.beta1 * h + (0.5 * self.beta2) * h * h
        return loss + scale * penalty

    def _check_finite_loss(self, loss_value: float, epoch: int,
                           batch_index: int) -> None:
        """Fail fast on a non-finite loss, naming the offending iterate.

        The augmented-Lagrangian loop otherwise *stalls silently*: a NaN
        loss produces NaN gradients, the optimizer writes NaN into every
        parameter, and all later epochs train nothing while h(W) reports
        garbage.
        """
        if np.isfinite(loss_value):
            return
        bad = self.non_finite_parameters()
        detail = ""
        if bad:
            names = ", ".join(f"{name}.{field}" for name, field in bad[:8])
            detail = f"; non-finite parameter state: {names}"
        raise RuntimeError(
            f"{self.name}: training loss became non-finite ({loss_value!r}) "
            f"at epoch {epoch + 1}, batch {batch_index + 1} of Algorithm 1"
            f"{detail}. Re-run under repro.analysis.detect_anomaly() (or the "
            f"CLI's --detect-anomaly) to attribute the NaN/Inf to the "
            f"creating op.")

    def _check_finite_h(self, h_value: float, epoch: int) -> None:
        """Fail fast when the acyclicity penalty h(W) leaves the reals."""
        if np.isfinite(h_value):
            return
        w_max = float(np.abs(self.graph.weights.data).max())
        raise RuntimeError(
            f"{self.name}: acyclicity penalty h(W) became non-finite "
            f"({h_value!r}) after epoch {epoch + 1} "
            f"(max |W^c| = {w_max:.3g}, beta1 = {self.beta1:.3g}, "
            f"beta2 = {self.beta2:.3g}). The matrix exponential in h "
            f"overflows when W^c grows unchecked — lower the learning rate "
            f"or raise lambda_l1.")

    def _seed_graph(self, samples: Sequence[EvalSample]) -> None:
        """Seed ``W^c`` from transition lift, calibrated to the ε gate.

        Soft assignments dilute eq. 9 (``ā^T W^c b̄ < max W^c``), and the
        dilution grows with K — so after seeding, ``W^c`` is rescaled such
        that the *item-level* peak sits at ~0.6, keeping the gate's
        operating range consistent across cluster counts.
        """
        cfg = self.config
        seed = pretrain_cluster_graph(samples,
                                      self.clusters.hard_assignments(),
                                      cfg.num_clusters)
        assignments = self.clusters.assignments().data
        peak = (assignments @ seed @ assignments.T).max()
        if peak > 1e-6:
            seed = seed * (0.6 / peak)
        # gradlint: disable-next=GL003 — pre-training seed write: no forward
        # pass has run yet, so no backward closure can hold a stale reference.
        self.graph.weights.data[...] = seed

    def fit_samples(self, samples: Sequence[EvalSample],
                    warm_start: bool = False,
                    num_epochs: Optional[int] = None) -> FitResult:
        """Algorithm 1: alternating updates with augmented-Lagrangian state.

        The recommender parameters step every epoch; the causal parameters
        (``Θ_a`` and ``W^c``) step only on epochs divisible by
        ``update_every`` — the paper's §III-C efficiency device.

        ``warm_start=True`` continues Algorithm 1 from the current
        parameters instead of re-seeding ``W^c`` from transition lift: the
        learned graph, the multipliers (``beta1``/``beta2``) and the
        ``h``-stall tracker all carry over, which is what the online
        refresh loop needs — re-derive the causal artifacts on a sliding
        window of fresh events without forgetting the converged state.
        ``num_epochs`` overrides ``config.num_epochs`` for this call only
        (refresh runs a few epochs per window, not a full training run).
        """
        if not samples:
            raise ValueError(f"{self.name}: no training samples")
        cfg = self.config
        epochs = cfg.num_epochs if num_epochs is None else num_epochs
        self.set_sparse_grads(cfg.sparse_grads)
        if cfg.pretrain_graph and cfg.use_causal and not warm_start:
            self._seed_graph(samples)
        causal_params = list(self.clusters.parameters()) + list(
            self.graph.parameters())
        if self._graph_module_for_penalties is not self.graph:
            causal_params += list(self._graph_module_for_penalties.parameters())
        causal_ids = {id(p) for p in causal_params}
        rec_params = [p for p in self.parameters() if id(p) not in causal_ids]
        opt_rec = make_optimizer(cfg.optimizer, rec_params,
                                 lr=cfg.learning_rate,
                                 weight_decay=cfg.weight_decay)
        opt_causal = make_optimizer(cfg.optimizer, causal_params,
                                    lr=cfg.learning_rate)
        result = FitResult(extra={"h": [], "beta2": []})
        num_batches = max(1, int(np.ceil(len(samples) / cfg.batch_size)))
        self._penalty_scale = 1.0 / num_batches
        self.train()
        for epoch in range(epochs):
            update_causal = (epoch % cfg.update_every) == 0
            total, count = 0.0, 0
            for batch_index, batch in enumerate(
                    iterate_batches(samples, cfg.batch_size, self.rng,
                                    max_history=cfg.max_history)):
                sample_negatives(batch, self.num_items, cfg.num_negatives,
                                 self.rng)
                opt_rec.zero_grad()
                opt_causal.zero_grad()
                loss = self.training_loss(
                    batch, include_causal_penalties=update_causal)
                loss_value = loss.item()
                self._check_finite_loss(loss_value, epoch, batch_index)
                loss.backward()
                opt_rec.clip_grad_norm(cfg.grad_clip)
                opt_rec.step()
                if update_causal:
                    opt_causal.clip_grad_norm(cfg.grad_clip)
                    opt_causal.step()
                self._after_step()
                total += loss_value
                count += 1
            # Algorithm 1 lines 14–15: multiplier and penalty updates.
            h_new = self._graph_module_for_penalties.acyclicity_value()
            self._check_finite_h(h_new, epoch)
            self.beta1 += self.beta2 * h_new
            stalled = (np.isfinite(self._h_previous)
                       and abs(h_new) >= cfg.kappa2 * abs(self._h_previous))
            if stalled:
                self.beta2 = min(self.beta2 * cfg.kappa1, cfg.beta2_max)
            self._h_previous = h_new
            mean_loss = total / max(count, 1)
            result.epoch_losses.append(mean_loss)
            result.extra["h"].append(h_new)
            result.extra["beta2"].append(self.beta2)
            if cfg.verbose:
                print(f"[{self.name}] epoch {epoch + 1}/{epochs} "
                      f"loss={mean_loss:.4f} h={h_new:.2e} beta2={self.beta2:.2g}")
        self.eval()
        return result

    # ------------------------------------------------------------------
    # Scoring / inspection
    # ------------------------------------------------------------------
    def score_samples(self, samples: Sequence[EvalSample]) -> np.ndarray:
        """Full-catalog scores; honours ``cfg.filtering_mode``."""
        self.eval()
        batch = pad_samples(samples, max_history=self.config.max_history)
        if self.config.filtering_mode == "strict":
            all_items = np.tile(np.arange(self.num_items + 1),
                                (batch.batch_size, 1))
            return self.candidate_logits_strict(batch, all_items)
        from ..nn import no_grad
        with no_grad(self):
            return self.candidate_logits(batch, None).data

    def _item_matrix_fingerprint(self) -> bytes:
        """Digest of everything eq. 9's projection depends on.

        Hashing the K×K graph and the (V+1)×K assignment logits is far
        cheaper than the (V+1)² projection itself, and it catches *every*
        update path — optimizer steps, ``load_state_dict``, and the direct
        seed writes of ``_seed_graph`` — without manual invalidation hooks.
        """
        digest = hashlib.blake2b(digest_size=16)
        digest.update(self.graph.weights.data.tobytes())
        digest.update(self.clusters.assignment_logits.data.tobytes())
        return digest.digest()

    def item_causal_matrix(self) -> np.ndarray:
        """Learned item-level ``W`` (eq. 9) as a read-only numpy array.

        Cached on the instance and invalidated whenever the cluster graph
        or the assignment logits change, so serving-artifact precompute and
        repeated explain calls don't rebuild the K×K→N×N projection each
        time.  The returned array is marked read-only because callers share
        the cached buffer; copy before mutating.
        """
        key = self._item_matrix_fingerprint()
        if self._item_matrix_cache is not None \
                and self._item_matrix_cache[0] == key:
            return self._item_matrix_cache[1]
        assignments = self.clusters.assignments().data
        matrix = assignments @ self.graph.numpy_matrix() @ assignments.T
        matrix.setflags(write=False)
        self._item_matrix_cache = (key, matrix)
        return matrix

    def learned_cluster_graph(self, threshold: float = 0.1) -> np.ndarray:
        """Thresholded, cycle-pruned cluster-level DAG."""
        return self.graph.as_dag(threshold)
