"""Data-driven initialization of the cluster-level causal graph.

§III-C of the paper notes that when prior knowledge of ``W`` is available
one may *pre-train* it to improve training efficiency.  We realise that
suggestion without external knowledge: estimate directed cluster-level
transition lift from the training sequences themselves —

    lift[p, k] = P(target in cluster k | cluster p in recent history)
               - P(target in cluster k)

with a geometric recency decay over history steps.  Positive lift marks
candidate causal edges; the clipped, rescaled, cycle-pruned matrix seeds
``W^c`` so the ε gate of eq. 10 passes genuinely-predictive history from
the first epoch, and the joint objective (BCE + L1 + acyclicity) refines it.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..data.interactions import EvalSample


def estimate_cluster_transitions(samples: Sequence[EvalSample],
                                 hard_clusters: np.ndarray,
                                 num_clusters: int,
                                 decay: float = 0.6) -> np.ndarray:
    """Decay-weighted directed co-occurrence counts between clusters.

    ``counts[p, k]`` accumulates, for every (history item ``a``, target item
    ``b``) pair, ``decay^(gap)`` where ``gap`` is the number of steps between
    them; rows are history clusters, columns target clusters.
    """
    counts = np.zeros((num_clusters, num_clusters))
    target_totals = np.zeros(num_clusters)
    for sample in samples:
        history = sample.history
        gaps = len(history) - np.arange(len(history))  # last step has gap 1
        for target_item in sample.target:
            k = hard_clusters[target_item]
            target_totals[k] += 1.0
            for step, basket in enumerate(history):
                weight = decay ** (gaps[step] - 1)
                for item in basket:
                    counts[hard_clusters[item], k] += weight
    return counts


def transition_lift(counts: np.ndarray) -> np.ndarray:
    """Ratio lift ``P(k | p in history) / P(k) - 1``.

    Using the ratio (not the difference) keeps edges into *popular* target
    clusters visible: a sink cluster with a large base rate would swallow
    any additive lift.
    """
    row_sums = counts.sum(axis=1, keepdims=True)
    conditional = np.divide(counts, np.maximum(row_sums, 1e-12))
    base_rate = counts.sum(axis=0)
    base_rate = base_rate / max(base_rate.sum(), 1e-12)
    return conditional / np.maximum(base_rate[None, :], 1e-12) - 1.0


def pretrain_cluster_graph(samples: Sequence[EvalSample],
                           hard_clusters: np.ndarray,
                           num_clusters: int,
                           decay: float = 0.6,
                           floor: float = 0.35,
                           ceiling: float = 0.7) -> np.ndarray:
    """Seed matrix for ``W^c``: dense, lift-ordered weights in [floor, ceiling].

    The seed stays *dense* on purpose: entries below the ε gate receive no
    data gradient (eq. 10's hard threshold), so a sparse seed freezes most
    of the graph at birth.  Instead every off-diagonal entry starts above
    typical thresholds, ordered by the estimated transition lift; the joint
    objective (BCE + L1 + acyclicity) then prunes the spurious directions.
    """
    counts = estimate_cluster_transitions(samples, hard_clusters,
                                          num_clusters, decay)
    lift = transition_lift(counts)
    np.fill_diagonal(lift, 0.0)
    positive = np.clip(lift, 0.0, None)
    peak = positive.max()
    scaled = positive / peak if peak > 0 else positive
    seed = floor + (ceiling - floor) * scaled
    np.fill_diagonal(seed, 0.0)
    return seed
