"""Recommendation explanations (the paper's §V-E protocol).

For a test sample with singleton baskets, each history item receives an
explanation score for the target item:

* full Causer:      ``Ŵ_{v_t b} · α_t``  (global causal effect × local attention)
* Causer (-att):    ``Ŵ_{v_t b}``        (causal effect only)
* Causer (-causal): ``α_t``              (attention only — concurrence-based)

The top-scored history items are the model's explanation; Fig. 7 compares
them with the labeled true causes, Fig. 8 inspects individual cases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from ..data.batching import pad_samples
from ..data.explanation import ExplanationSample
from ..data.interactions import EvalSample
from .causer import Causer


@dataclass
class ExplanationBreakdown:
    """Per-history-step scores for one sample, by mechanism."""

    history_items: List[int]
    causal_effect: np.ndarray   # Ŵ_{v_t b} per step
    attention: np.ndarray       # α_t per step
    combined: np.ndarray        # product, the full model's score


def explanation_breakdown(model: Causer,
                          sample: ExplanationSample) -> ExplanationBreakdown:
    """Compute Ŵ, α and their product for every history step of ``sample``.

    Requires singleton baskets (the paper's labeling filter) so steps and
    history items align one-to-one.
    """
    if any(len(basket) != 1 for basket in sample.history):
        raise ValueError("explanation protocol requires singleton baskets")
    model.eval()
    eval_sample = EvalSample(user_id=sample.user_id, history=sample.history,
                             target=(sample.target_item,))
    batch = pad_samples([eval_sample])
    item_embeddings = model.clusters.encode()
    assignments = model.clusters.assignments()
    states, last = model._history_states(batch, item_embeddings)
    alpha = model._attention_weights(states, last, batch.step_mask).data[0]
    candidates = np.array([[sample.target_item]])
    pairwise = model._pairwise_effects(batch, assignments, candidates)
    # Explanations rank history items by the *continuous* causal strength
    # W_{v_t b} (eq. 9).  The ε gate is a recommendation-time filter; using
    # it here would zero every score whenever the tuned ε is aggressive and
    # make the ranking degenerate.
    keep = np.ones_like(pairwise.data)
    effects = model._gated_effects(pairwise, keep,
                                   batch.basket_mask).data[0, :, 0]
    steps = len(sample.history)
    return ExplanationBreakdown(
        history_items=[basket[0] for basket in sample.history],
        causal_effect=effects[:steps].copy(),
        attention=alpha[:steps].copy(),
        combined=(effects[:steps] * alpha[:steps]).copy())


def make_explainer(model: Causer, mode: str = "full"
                   ) -> Callable[[ExplanationSample], np.ndarray]:
    """Explainer function for :func:`repro.eval.evaluate_explanations`.

    ``mode``: ``"full"`` (Ŵ·α), ``"causal"`` (Ŵ only — the (-att) variant's
    score), or ``"attention"`` (α only — the (-causal) variant's score).
    """
    if mode not in ("full", "causal", "attention"):
        raise ValueError(f"unknown explanation mode {mode!r}")

    def explainer(sample: ExplanationSample) -> np.ndarray:
        breakdown = explanation_breakdown(model, sample)
        if mode == "full":
            return breakdown.combined
        if mode == "causal":
            return breakdown.causal_effect
        return breakdown.attention

    return explainer


def attention_explainer(attention_weights_fn
                        ) -> Callable[[ExplanationSample], np.ndarray]:
    """Wrap a baseline's attention extractor (e.g. NARM) as an explainer."""

    def explainer(sample: ExplanationSample) -> np.ndarray:
        eval_sample = EvalSample(user_id=sample.user_id,
                                 history=sample.history,
                                 target=(sample.target_item,))
        batch = pad_samples([eval_sample])
        weights = attention_weights_fn(batch)[0]
        return np.asarray(weights[:len(sample.history)], dtype=np.float64)

    return explainer


def format_case_study(model: Causer, sample: ExplanationSample,
                      item_names: Sequence[str] = None) -> str:
    """Human-readable Fig. 8-style case: history, target, per-model picks."""
    breakdown = explanation_breakdown(model, sample)

    def label(item: int) -> str:
        if item_names is not None and item < len(item_names):
            return item_names[item]
        return f"item#{item}"

    lines = [f"target: {label(sample.target_item)}",
             f"true causes: {[label(i) for i in sample.cause_items]}"]
    order = np.argsort(-breakdown.combined)
    lines.append("history (ranked by Causer explanation score):")
    for idx in order:
        item = breakdown.history_items[idx]
        lines.append(
            f"  {label(item):>12s}  W_hat={breakdown.causal_effect[idx]:.3f} "
            f"alpha={breakdown.attention[idx]:.3f} "
            f"combined={breakdown.combined[idx]:.3f}"
            + ("   <-- true cause" if item in sample.cause_items else ""))
    return "\n".join(lines)
