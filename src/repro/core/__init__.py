"""`repro.core` — the paper's primary contribution.

The Causer framework (§III): differentiable item clustering (eqs. 6–8), the
cluster-level causal graph with NOTEARS acyclicity (eq. 9 + constraint),
the causally-filtered sequential model (eq. 10), the augmented-Lagrangian
trainer (Algorithm 1) and the explanation machinery (§V-E).
"""

from .causal_graph import ClusterCausalGraph
from .causer import Causer
from .dynamic import DynamicCauser, DynamicClusterCausalGraph
from .clustering import ItemClusterModule
from .config import CauserConfig, ablation_config
from .interventions import (counterfactual_scores, counterfactual_shift,
                            intervention_report,
                            most_influential_history_item,
                            total_cluster_effect, total_effect_matrix)
from .explain import (ExplanationBreakdown, attention_explainer,
                      explanation_breakdown, format_case_study,
                      make_explainer)

__all__ = [
    "Causer", "CauserConfig", "ablation_config",
    "DynamicCauser", "DynamicClusterCausalGraph",
    "ItemClusterModule", "ClusterCausalGraph",
    "ExplanationBreakdown", "explanation_breakdown", "make_explainer",
    "attention_explainer", "format_case_study",
    "total_cluster_effect", "total_effect_matrix",
    "counterfactual_scores", "counterfactual_shift",
    "most_influential_history_item", "intervention_report",
]
